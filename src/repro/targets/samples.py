"""``gadgets`` workload: the Kocher gadget samples as a standalone target.

The Table 3 methodology injects the gadget samples of
:mod:`repro.targets.gadget_samples` into real workloads.  For campaign
matrices it is also useful to fuzz the samples *directly* — a tiny driver
that dispatches on the first input byte into one of the four Kocher
variants, so a short campaign exercises every gadget shape without paying
for a host program.  This mirrors the paper's sanity experiments on the
bare Spectre examples before moving to the COTS workloads.
"""

from __future__ import annotations

from repro.targets.base import TargetProgram, REGISTRY
from repro.targets.gadget_samples import (
    GADGET_TEMPLATES,
    gadget_globals,
    gadget_snippet,
)


def _build_source() -> str:
    """One driver with every gadget variant behind an input-selected branch.

    The input is a stream of 9-byte records (selector byte + payload); the
    driver dispatches one gadget per record until the input runs out.  The
    9-byte fuzz seeds therefore dispatch exactly one gadget — the classic
    single-shot shape — while the throughput benchmarks hand in longer
    ``perf_input_builder`` streams so one execution exercises many gadget
    dispatches instead of paying per-run setup for ~60 instructions.
    """
    parts = []
    for instance in range(len(GADGET_TEMPLATES)):
        parts.append(gadget_globals(instance))
    parts.append("int main() {")
    parts.append("    byte buf[1440];")
    parts.append("    int n = read_input(buf, 1440);")
    parts.append("    if (n < 1) {")
    parts.append("        return 0;")
    parts.append("    }")
    parts.append("    int pos = 0;")
    parts.append("    while (pos < n) {")
    parts.append("        int selector = buf[pos] & 3;")
    for instance in range(len(GADGET_TEMPLATES)):
        parts.append(f"        if (selector == {instance}) {{")
        parts.append(gadget_snippet(instance, variant=instance))
        parts.append("        }")
    parts.append("        pos = pos + 9;")
    parts.append("    }")
    parts.append("    return 0;")
    parts.append("}")
    return "\n".join(parts)


SOURCE = _build_source()


def _perf_input(size: int) -> bytes:
    # A stream of 9-byte records (the driver dispatches one gadget per
    # record).  ``attack_input()`` reads successive raw 8-byte windows of
    # this same stream as little-endian attacker indices, so payload bytes
    # stay zero: every window then decodes to a small in-bounds index and
    # each gadget body executes fully (and architecturally safely) instead
    # of bailing at the bounds check or faulting on a wild load.  Non-zero
    # selectors are only placed where record and window starts coincide
    # (every 8th record) so they read back as indices <= 3; those records
    # cycle the other three gadget variants.
    out = bytearray(max(size, 1))
    for record in range(0, len(out), 9 * 8):
        out[record] = (record // (9 * 8)) % 3 + 1
    return bytes(out[:size])


GADGET_SAMPLES = REGISTRY.register(
    TargetProgram(
        name="gadgets",
        source=SOURCE,
        seeds=[
            # selector 0 with attacker index 16 — the first out-of-bounds
            # index: the speculative window survives the whole gadget, so
            # this seed alone reports both gadget-0 sites (the OOB load
            # and the secret-dependent dereference) instead of relying on
            # mutation to stumble into a small index.
            b"\x10" + b"\x00" * 8,
            b"\x01" + b"\x7f" * 8,
            b"\x02" + b"\xff" * 8,
            b"\x03" + b"\x41" * 8,
        ],
        attack_points=[],
        perf_input_builder=_perf_input,
        description="Kocher gadget samples behind an input-dispatched driver",
    )
)
