"""``brotli`` workload: an LZ77-style decompressor.

Mirrors the decoder structure of brotli (and of the LZMA code in the
paper's Appendix A case study): a command stream of literal runs and
back-references, a sliding window on the heap, distance/length code tables
and a static dictionary fallback.  Back-reference distances derived from
the input are the classic speculative read-offset-manipulation habitat.
"""

from __future__ import annotations

from repro.targets.base import AttackPoint, TargetProgram, REGISTRY

SOURCE = r"""
byte length_table[16] = {1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 32, 48, 64};
byte distance_table[16] = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 255};
byte dictionary[64] = {104, 101, 108, 108, 111, 32, 119, 111, 114, 108, 100, 32,
                       99, 111, 109, 112, 114, 101, 115, 115, 105, 111, 110, 32,
                       100, 97, 116, 97, 32, 116, 101, 115, 116, 32, 98, 114,
                       111, 116, 108, 105, 32, 115, 116, 114, 101, 97, 109, 32,
                       112, 97, 99, 107, 101, 116, 32, 98, 117, 102, 102, 101,
                       114, 32, 101, 110};
int window_size = 1024;

int read_varint(byte *src, int len, int pos, int *value_out) {
    int value = 0;
    int shift = 0;
    while (pos < len && shift < 32) {
        int b = src[pos];
        value = value | ((b & 127) << shift);
        pos = pos + 1;
        if (b < 128) {
            break;
        }
        shift = shift + 7;
    }
    value_out[0] = value;
    return pos;
}

int decode_length(int code) {
    /*@ATTACK_POINT:1@*/
    if (code < 16) {
        return length_table[code];
    }
    return 4;
}

int decode_distance(int code, int extra) {
    int base = 1;
    /*@ATTACK_POINT:2@*/
    if (code < 16) {
        base = distance_table[code];
    }
    return base + extra;
}

int copy_literals(byte *src, int len, int pos, byte *window, int wpos, int count) {
    int i = 0;
    while (i < count && pos + i < len) {
        /*@ATTACK_POINT:3@*/
        if (wpos + i < window_size) {
            window[wpos + i] = src[pos + i];
        }
        i = i + 1;
    }
    return i;
}

int copy_match(byte *window, int wpos, int distance, int length) {
    int i = 0;
    while (i < length) {
        int src_index = wpos + i - distance;
        /*@ATTACK_POINT:4@*/
        if (src_index >= 0) {
            /*@ATTACK_POINT:5@*/
            if (wpos + i < window_size) {
                window[wpos + i] = window[src_index];
            }
        }
        i = i + 1;
    }
    return length;
}

int copy_dictionary(byte *window, int wpos, int word, int length) {
    int i = 0;
    while (i < length) {
        /*@ATTACK_POINT:6@*/
        if (word + i < 64) {
            /*@ATTACK_POINT:7@*/
            if (wpos + i < window_size) {
                window[wpos + i] = dictionary[word + i];
            }
        }
        i = i + 1;
    }
    return length;
}

int checksum(byte *window, int wpos) {
    int sum = 0;
    int i = 0;
    while (i < wpos) {
        /*@ATTACK_POINT:8@*/
        if (i < window_size) {
            sum = sum + window[i];
        }
        i = i + 1;
    }
    return sum & 65535;
}

int decompress(byte *src, int len) {
    byte *window = malloc(window_size);
    int *varint_out = malloc(8);
    int wpos = 0;
    int pos = 0;
    int commands = 0;
    while (pos < len) {
        int op = src[pos];
        pos = pos + 1;
        if (op < 64) {
            // Literal run: op = count.
            int copied = copy_literals(src, len, pos, window, wpos, op);
            pos = pos + copied;
            wpos = wpos + copied;
        } else {
            if (op < 128) {
                // Back-reference: 4-bit length code, distance varint.
                int length_code = op & 15;
                int length = decode_length(length_code);
                pos = read_varint(src, len, pos, varint_out);
                int distance_code = varint_out[0] & 15;
                int extra = varint_out[0] >> 4;
                int distance = decode_distance(distance_code, extra);
                /*@ATTACK_POINT:9@*/
                if (distance <= wpos) {
                    copy_match(window, wpos, distance, length);
                } else {
                    // Underflowing references fall back to the dictionary
                    // (the LZMA-style offset manipulation of Appendix A.1).
                    /*@ATTACK_POINT:10@*/
                    copy_dictionary(window, wpos, distance - wpos, length);
                }
                wpos = wpos + length;
            } else {
                if (op < 192) {
                    // Dictionary word reference.
                    int word = (op & 63) % 64;
                    pos = read_varint(src, len, pos, varint_out);
                    int dict_length = varint_out[0] & 63;
                    /*@ATTACK_POINT:11@*/
                    copy_dictionary(window, wpos, word, dict_length);
                    wpos = wpos + dict_length;
                } else {
                    // Metadata block: skip bytes.
                    int skip = op & 63;
                    /*@ATTACK_POINT:12@*/
                    pos = pos + skip;
                }
            }
        }
        if (wpos >= window_size) {
            wpos = 0;
        }
        commands = commands + 1;
        if (commands > 4096) {
            break;
        }
    }
    /*@ATTACK_POINT:13@*/
    int sum = checksum(window, wpos);
    free(window);
    free(varint_out);
    return sum;
}

int main() {
    byte buf[1024];
    int n = read_input(buf, 1024);
    if (n <= 0) {
        return 0;
    }
    return decompress(buf, n);
}
"""

SEEDS = [
    bytes([5]) + b"hello" + bytes([0x41, 0x03]) + bytes([0x82, 0x05]) + bytes([3]) + b"end",
    bytes([8]) + b"abcdefgh" + bytes([0x45, 0x12]) + bytes([0xC1, 0x20]),
    bytes([2]) + b"xy" + bytes([0x90, 0x08]) + bytes([0x50, 0x07]) + bytes([1]) + b"z",
]


def perf_input(size: int = 256) -> bytes:
    """A command stream with many literal runs and back-references."""
    out = bytearray()
    index = 0
    while len(out) < size:
        out += bytes([8]) + bytes((65 + (index + i) % 26) for i in range(8))
        out += bytes([0x40 | (index % 16), (index * 3) % 128])
        out += bytes([0x80 | (index % 64), index % 64])
        index += 1
    return bytes(out[:size])


TARGET = REGISTRY.register(
    TargetProgram(
        name="brotli",
        source=SOURCE,
        seeds=SEEDS,
        attack_points=[
            AttackPoint(1, "decode_length"),
            AttackPoint(2, "decode_distance"),
            AttackPoint(3, "copy_literals"),
            AttackPoint(4, "copy_match"),
            AttackPoint(5, "copy_match"),
            AttackPoint(6, "copy_dictionary"),
            AttackPoint(7, "copy_dictionary"),
            AttackPoint(8, "checksum"),
            AttackPoint(9, "decompress"),
            AttackPoint(10, "decompress"),
            AttackPoint(11, "decompress"),
            AttackPoint(12, "decompress"),
            AttackPoint(13, "decompress"),
        ],
        perf_input_builder=perf_input,
        description="LZ77-style decompressor (brotli stand-in)",
    )
)
