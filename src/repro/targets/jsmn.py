"""``jsmn`` workload: a minimal JSON tokenizer (paper's jsmn stand-in).

The original jsmn is a single-file JSON tokenizer; the mini-C version below
keeps its structure — a character-classification loop that fills a
heap-allocated token array behind a bounds check, tracks nesting depth and
validates primitives — which is exactly the kind of input-indexed,
bounds-checked code where Spectre-V1 gadgets live.
"""

from __future__ import annotations

from repro.targets.base import AttackPoint, TargetProgram, REGISTRY

SOURCE = r"""
// jsmn-like JSON tokenizer.
// Token kinds: 1=object, 2=array, 3=string, 4=primitive.

byte type_table[33] = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                       0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
int token_limit = 64;

int is_space(int c) {
    if (c == ' ') { return 1; }
    if (c == 9) { return 1; }
    if (c == 10) { return 1; }
    if (c == 13) { return 1; }
    return 0;
}

int is_delim(int c) {
    if (c == ',') { return 1; }
    if (c == ':') { return 1; }
    if (c == '}') { return 1; }
    if (c == ']') { return 1; }
    return 0;
}

int parse_string(byte *js, int len, int pos, int *tokens, int count) {
    int i = pos + 1;
    while (i < len) {
        int c = js[i];
        if (c == '"') {
            /*@ATTACK_POINT:1@*/
            if (count < token_limit) {
                tokens[count * 2] = pos + 1;
                tokens[count * 2 + 1] = i;
            }
            return i;
        }
        if (c == '\\') {
            i = i + 1;
            int esc = js[i];
            if (esc == 'u') {
                i = i + 4;
            }
        }
        i = i + 1;
    }
    return 0 - 1;
}

int parse_primitive(byte *js, int len, int pos, int *tokens, int count) {
    int i = pos;
    while (i < len) {
        int c = js[i];
        if (is_space(c) || is_delim(c)) {
            break;
        }
        if (c < 32) {
            return 0 - 2;
        }
        i = i + 1;
    }
    /*@ATTACK_POINT:2@*/
    if (count < token_limit) {
        tokens[count * 2] = pos;
        tokens[count * 2 + 1] = i;
    }
    return i - 1;
}

int jsmn_parse(byte *js, int len) {
    int *tokens = malloc(token_limit * 16);
    byte *token_kind = malloc(token_limit);
    int *depth_stack = malloc(64 * 8);
    int count = 0;
    int depth = 0;
    int pos = 0;
    while (pos < len) {
        int c = js[pos];
        if (c == '{' || c == '[') {
            /*@ATTACK_POINT:3@*/
            if (count < token_limit) {
                token_kind[count] = 1;
                if (c == '[') {
                    token_kind[count] = 2;
                }
                tokens[count * 2] = pos;
                tokens[count * 2 + 1] = 0 - 1;
            }
            if (depth < 64) {
                depth_stack[depth] = count;
            }
            depth = depth + 1;
            count = count + 1;
        } else {
            if (c == '}' || c == ']') {
                depth = depth - 1;
                if (depth >= 0) {
                    if (depth < 64) {
                        int open_index = depth_stack[depth];
                        if (open_index < token_limit) {
                            tokens[open_index * 2 + 1] = pos;
                        }
                    }
                }
            } else {
                if (c == '"') {
                    int end = parse_string(js, len, pos, tokens, count);
                    if (end < 0) {
                        free(tokens);
                        free(token_kind);
                        free(depth_stack);
                        return 0 - 1;
                    }
                    if (count < token_limit) {
                        token_kind[count] = 3;
                    }
                    count = count + 1;
                    pos = end;
                } else {
                    if (!is_space(c) && !is_delim(c)) {
                        int pend = parse_primitive(js, len, pos, tokens, count);
                        if (pend < 0) {
                            free(tokens);
                            free(token_kind);
                            free(depth_stack);
                            return 0 - 2;
                        }
                        if (count < token_limit) {
                            token_kind[count] = 4;
                        }
                        count = count + 1;
                        pos = pend;
                    }
                }
            }
        }
        pos = pos + 1;
    }
    free(tokens);
    free(token_kind);
    free(depth_stack);
    return count;
}

int main() {
    byte buf[512];
    int n = read_input(buf, 512);
    if (n <= 0) {
        return 0;
    }
    return jsmn_parse(buf, n);
}
"""

SEEDS = [
    b'{"key": "value", "n": 123}',
    b'[1, 2, 3, {"a": true}, "str"]',
    b'{"nested": {"deep": [null, false, 1.5]}}',
    b'plainprimitive',
]


def perf_input(size: int = 256) -> bytes:
    """A large, deeply structured JSON document (the 'crafted large input')."""
    parts = [b'{"items": [']
    index = 0
    while sum(len(p) for p in parts) < size:
        parts.append(b'{"id": %d, "name": "item%d"}, ' % (index, index))
        index += 1
    parts.append(b'0]}')
    return b"".join(parts)


TARGET = REGISTRY.register(
    TargetProgram(
        name="jsmn",
        source=SOURCE,
        seeds=SEEDS,
        attack_points=[
            AttackPoint(1, "parse_string"),
            AttackPoint(2, "parse_primitive"),
            AttackPoint(3, "jsmn_parse"),
        ],
        perf_input_builder=perf_input,
        description="minimal JSON tokenizer (jsmn stand-in)",
    )
)
