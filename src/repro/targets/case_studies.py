"""Appendix A case studies as standalone mini-C programs.

* :data:`LZMA_OFFSET_SOURCE` — the speculative read-offset manipulation of
  Listing 5 (LZMA's ``LzmaDec_TryDummy``): a mispredicted underflow check
  lets an attacker-shaped ``dicBufSize`` offset a dictionary read out of
  bounds, and the loaded byte then masks an offset used in a second
  dereference (a User-Cache gadget).
* :data:`MASSAGE_PORT_SOURCE` — the speculative memory massage of Listing 6
  (libhtp's ``htp_conn_destroy``): a mispredicted NULL check turns an error
  code into a huge loop bound, two more mispredictions bypass the list
  bounds checks, and the massaged pointer's contents finally influence a
  branch (a Massage-Port gadget).
"""

from __future__ import annotations

from repro.targets.base import TargetProgram

LZMA_OFFSET_SOURCE = r"""
// Listing 5: speculative read offset manipulation (LZMA).
int dic_pos = 8;
int rep0 = 4;

int try_dummy(byte *dic, int dic_buf_size, byte *probs) {
    int x = dic_pos - rep0;
    // Mispredicted as true when dic_pos >= rep0: x is then offset by the
    // attacker-carried dictionary size.
    if (dic_pos < rep0) {
        x = x + dic_buf_size;
    }
    int match_byte = dic[x];
    int offs = 256;
    int symbol = 1;
    int tmp = 0;
    while (symbol < 256) {
        int bit = offs;
        match_byte = match_byte + match_byte;
        offs = offs & match_byte;
        tmp = tmp + probs[offs + bit + symbol];
        symbol = symbol * 2;
    }
    return tmp;
}

int main() {
    byte header[16];
    int n = read_input(header, 16);
    if (n < 8) {
        return 0;
    }
    // The dictionary size is carried in attacker-controlled metadata.
    int dic_buf_size = header[0] * 65536 + header[1] * 256 + header[2];
    byte *dic = malloc(64);
    byte *probs = malloc(1024);
    int result = try_dummy(dic, dic_buf_size, probs);
    free(dic);
    free(probs);
    return result & 255;
}
"""

MASSAGE_PORT_SOURCE = r"""
// Listing 6: speculative memory massage and indirectly controlled read.
int list_max = 8;

int list_size(int *list_ptr, int current_size) {
    // Mispredicted as true even though the caller guarantees non-NULL:
    // the -1 error code becomes a huge unsigned loop bound.
    if (list_ptr == 0) {
        return 0 - 1;
    }
    return current_size;
}

int list_get(int *elements, int current_size, int idx) {
    if (idx >= current_size) {
        return 0;
    }
    if (idx < list_max) {
        return elements[idx];
    }
    return 0;
}

int remove_tx(int *elements, int current_size, int tx) {
    int i = 0;
    int removed = 0;
    while (i < current_size) {
        int tx2 = list_get(elements, current_size, i);
        // The massaged value influences this branch: a port-contention
        // transmitter under the Kasper policy.
        if (tx2 == tx) {
            removed = removed + 1;
        }
        i = i + 1;
    }
    return removed;
}

int conn_destroy(int *elements, int current_size) {
    int n = list_size(elements, current_size);
    int i = 0;
    int total = 0;
    while (i < n) {
        int tx = list_get(elements, current_size, i);
        if (tx != 0) {
            total = total + remove_tx(elements, current_size, tx);
        }
        i = i + 1;
        if (i > 64) {
            break;
        }
    }
    return total;
}

int main() {
    byte buf[64];
    int n = read_input(buf, 64);
    if (n < 4) {
        return 0;
    }
    int *elements = malloc(list_max * 8);
    int i = 0;
    while (i < list_max && i < n) {
        elements[i] = buf[i];
        i = i + 1;
    }
    int result = conn_destroy(elements, i);
    free(elements);
    return result;
}
"""

LZMA_CASE_STUDY = TargetProgram(
    name="case_lzma_offset",
    source=LZMA_OFFSET_SOURCE,
    seeds=[bytes([0x40, 0x10, 0x20, 0, 0, 0, 0, 1]), bytes(16)],
    description="Appendix A.1: speculative read offset manipulation",
)

MASSAGE_CASE_STUDY = TargetProgram(
    name="case_massage_port",
    source=MASSAGE_PORT_SOURCE,
    seeds=[bytes(range(16)), bytes([7] * 8)],
    description="Appendix A.2: speculative memory massage + port transmitter",
)
