"""Target-program infrastructure: definitions, registry, perf inputs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.loader.binary_format import TelfBinary
from repro.minic.codegen import CompilerOptions, SwitchLowering
from repro.minic.compiler import compile_source


@dataclass
class AttackPoint:
    """A location where an artificial Spectre gadget can be injected.

    ``marker`` is the textual marker embedded in the mini-C source
    (``/*@ATTACK_POINT:<id>@*/``); ``function`` is the function containing
    it (used to map gadget reports back to ground truth); ``reachable``
    records whether the fuzzing driver can reach the function at all — the
    paper's libyaml experiment has two injected gadgets in modules the
    driver never exercises, which become the two "expected" false negatives.
    """

    marker_id: int
    function: str
    reachable: bool = True


@dataclass
class TargetProgram:
    """A workload program of the evaluation (paper §7, "experimental setup")."""

    name: str
    source: str
    seeds: List[bytes]
    attack_points: List[AttackPoint] = field(default_factory=list)
    perf_input_builder: Optional[Callable[[int], bytes]] = None
    description: str = ""

    def compile(self, options: Optional[CompilerOptions] = None) -> TelfBinary:
        """Compile the target's mini-C source to a COTS binary."""
        return compile_source(self.source, options or CompilerOptions())

    def perf_input(self, size: int = 256) -> bytes:
        """A large crafted input for the run-time performance experiments."""
        if self.perf_input_builder is not None:
            return self.perf_input_builder(size)
        # Fall back to repeating the largest seed up to the requested size.
        seed = max(self.seeds, key=len) if self.seeds else b"A"
        repeated = (seed * (size // max(len(seed), 1) + 1))[:size]
        return repeated

    def marker_text(self, marker_id: int) -> str:
        """The literal marker string for an attack point."""
        return f"/*@ATTACK_POINT:{marker_id}@*/"


class TargetRegistry:
    """Registry of the evaluation's workload programs."""

    def __init__(self) -> None:
        self._targets: Dict[str, TargetProgram] = {}

    def register(self, target: TargetProgram) -> TargetProgram:
        """Register a target (used by the per-target modules at import time)."""
        if target.name in self._targets:
            raise ValueError(f"target {target.name!r} already registered")
        self._targets[target.name] = target
        return target

    def get(self, name: str) -> TargetProgram:
        """Look up a target by name.

        Raises:
            KeyError: if no target has that name.
        """
        if name not in self._targets:
            raise KeyError(
                f"unknown target {name!r}; available: {', '.join(self.names())}"
            )
        return self._targets[name]

    def names(self) -> List[str]:
        """Registered target names, sorted."""
        return sorted(self._targets)


#: The global registry populated by importing :mod:`repro.targets`.
REGISTRY = TargetRegistry()
