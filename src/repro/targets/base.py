"""Target-program infrastructure: definitions, registry, perf inputs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.loader.binary_format import TelfBinary
from repro.minic.codegen import CompilerOptions, SwitchLowering
from repro.minic.compiler import compile_source
from repro.plugins import PluginRegistry


@dataclass
class AttackPoint:
    """A location where an artificial Spectre gadget can be injected.

    ``marker`` is the textual marker embedded in the mini-C source
    (``/*@ATTACK_POINT:<id>@*/``); ``function`` is the function containing
    it (used to map gadget reports back to ground truth); ``reachable``
    records whether the fuzzing driver can reach the function at all — the
    paper's libyaml experiment has two injected gadgets in modules the
    driver never exercises, which become the two "expected" false negatives.
    """

    marker_id: int
    function: str
    reachable: bool = True


@dataclass
class TargetProgram:
    """A workload program of the evaluation (paper §7, "experimental setup")."""

    name: str
    source: str
    seeds: List[bytes]
    attack_points: List[AttackPoint] = field(default_factory=list)
    perf_input_builder: Optional[Callable[[int], bytes]] = None
    description: str = ""
    #: speculation variants with known (planted or paper-documented)
    #: gadgets in this program — the capability list ``repro targets
    #: --json`` publishes so campaigns and tests need no ad-hoc knowledge.
    variants: List[str] = field(default_factory=lambda: ["pht"])

    def compile(self, options: Optional[CompilerOptions] = None) -> TelfBinary:
        """Compile the target's mini-C source to a COTS binary."""
        return compile_source(self.source, options or CompilerOptions())

    def perf_input(self, size: int = 256) -> bytes:
        """A large crafted input for the run-time performance experiments."""
        if self.perf_input_builder is not None:
            return self.perf_input_builder(size)
        # Fall back to repeating the largest seed up to the requested size.
        seed = max(self.seeds, key=len) if self.seeds else b"A"
        repeated = (seed * (size // max(len(seed), 1) + 1))[:size]
        return repeated

    def marker_text(self, marker_id: int) -> str:
        """The literal marker string for an attack point."""
        return f"/*@ATTACK_POINT:{marker_id}@*/"


class TargetRegistry(PluginRegistry):
    """Registry of the evaluation's workload programs.

    A :class:`~repro.plugins.PluginRegistry` keyed by ``target.name`` —
    duplicate registrations raise, unknown lookups raise an error listing
    every registered target, and third-party workloads plug in through
    :func:`repro.plugins.register_target` (re-exported by ``repro.api``).
    """

    def __init__(self) -> None:
        super().__init__("target")

    def register(self, target: TargetProgram,
                 replace: bool = False) -> TargetProgram:
        """Register a target (used by the per-target modules at import time)."""
        return super().register(target.name, target, replace=replace)


#: The global registry populated by importing :mod:`repro.targets`.
REGISTRY = TargetRegistry()
