"""``libyaml`` workload: a line-oriented YAML-ish scanner.

Mirrors the structure of libyaml's scanner: indentation tracking with a
stack, key/value splitting, flow-sequence parsing and escape handling.  The
flow-sequence module (``scan_flow_mapping``) is deliberately *not* reachable
from the fuzzing driver — the paper's Table 3 experiment injects two gadgets
into libyaml modules the driver never covers, and those become the two
expected false negatives for every tool.
"""

from __future__ import annotations

from repro.targets.base import AttackPoint, TargetProgram, REGISTRY

SOURCE = r"""
int indent_limit = 32;
int key_limit = 64;

int scan_indent(byte *line, int len) {
    int i = 0;
    while (i < len) {
        if (line[i] != ' ') {
            break;
        }
        i = i + 1;
    }
    return i;
}

int scan_escape(byte *line, int len, int pos, byte *out, int out_cap, int out_len) {
    int c = line[pos];
    int value = c;
    if (c == 'n') { value = 10; }
    if (c == 't') { value = 9; }
    if (c == 'x') {
        /*@ATTACK_POINT:1@*/
        if (pos + 2 < len) {
            int hi = line[pos + 1];
            int lo = line[pos + 2];
            value = (hi - '0') * 16 + (lo - '0');
        }
    }
    /*@ATTACK_POINT:2@*/
    if (out_len < out_cap) {
        out[out_len] = value;
    }
    return value;
}

int scan_scalar(byte *line, int len, int start, byte *out, int out_cap) {
    int out_len = 0;
    int i = start;
    while (i < len) {
        int c = line[i];
        if (c == '#') {
            break;
        }
        if (c == '\\') {
            i = i + 1;
            scan_escape(line, len, i, out, out_cap, out_len);
            out_len = out_len + 1;
        } else {
            /*@ATTACK_POINT:3@*/
            if (out_len < out_cap) {
                out[out_len] = c;
            }
            out_len = out_len + 1;
        }
        i = i + 1;
    }
    return out_len;
}

int scan_key(byte *line, int len, int start, int *key_lens, int key_count) {
    int i = start;
    while (i < len) {
        if (line[i] == ':') {
            /*@ATTACK_POINT:4@*/
            if (key_count < key_limit) {
                key_lens[key_count] = i - start;
            }
            return i;
        }
        i = i + 1;
    }
    return 0 - 1;
}

// Flow mappings ({a: 1, b: 2}) are not exercised by the fuzzing driver;
// gadgets injected here are unreachable (paper §7.2, the two libyaml FNs).
int scan_flow_mapping(byte *line, int len, int start, byte *out, int out_cap) {
    int i = start;
    int items = 0;
    while (i < len) {
        int c = line[i];
        if (c == '}') {
            return items;
        }
        if (c == ',') {
            items = items + 1;
            /*@ATTACK_POINT:5@*/
            if (items < out_cap) {
                out[items] = i;
            }
        }
        if (c == '[') {
            /*@ATTACK_POINT:6@*/
            if (items < out_cap) {
                out[items] = c;
            }
        }
        i = i + 1;
    }
    return items;
}

int scan_document(byte *doc, int len) {
    int *indent_stack = malloc(indent_limit * 8);
    int *key_lens = malloc(key_limit * 8);
    byte *scalar_buf = malloc(256);
    int depth = 0;
    int keys = 0;
    int scalars = 0;
    int pos = 0;
    while (pos < len) {
        int line_start = pos;
        while (pos < len && doc[pos] != 10) {
            pos = pos + 1;
        }
        int line_len = pos - line_start;
        if (line_len > 0) {
            int indent = scan_indent(doc + line_start, line_len);
            /*@ATTACK_POINT:7@*/
            if (depth < indent_limit) {
                indent_stack[depth] = indent;
            }
            if (depth > 0) {
                int prev = depth - 1;
                /*@ATTACK_POINT:8@*/
                if (prev < indent_limit) {
                    if (indent > indent_stack[prev]) {
                        depth = depth + 1;
                    } else {
                        depth = depth - 1;
                    }
                }
            } else {
                depth = depth + 1;
            }
            int colon = scan_key(doc + line_start, line_len, indent, key_lens, keys);
            if (colon >= 0) {
                keys = keys + 1;
                /*@ATTACK_POINT:9@*/
                scalars = scalars + scan_scalar(doc + line_start, line_len,
                                                colon + 1, scalar_buf, 256);
            } else {
                /*@ATTACK_POINT:10@*/
                scalars = scalars + scan_scalar(doc + line_start, line_len,
                                                indent, scalar_buf, 256);
            }
        }
        pos = pos + 1;
    }
    free(indent_stack);
    free(key_lens);
    free(scalar_buf);
    return keys * 256 + scalars;
}

int main() {
    byte buf[768];
    int n = read_input(buf, 768);
    if (n <= 0) {
        return 0;
    }
    return scan_document(buf, n);
}
"""

SEEDS = [
    b"key: value\nlist:\n  - a\n  - b\n",
    b"name: test\nnested:\n  deep:\n    x: 1\n",
    b"escaped: \"a\\x41b\"\nplain: hello # comment\n",
]


def perf_input(size: int = 256) -> bytes:
    """A deeply indented YAML document."""
    lines = []
    level = 0
    index = 0
    while sum(len(l) for l in lines) < size:
        lines.append(b" " * (level * 2) + b"key%d: value_%d\n" % (index, index))
        level = (level + 1) % 6
        index += 1
    return b"".join(lines)


TARGET = REGISTRY.register(
    TargetProgram(
        name="libyaml",
        source=SOURCE,
        seeds=SEEDS,
        attack_points=[
            AttackPoint(1, "scan_escape"),
            AttackPoint(2, "scan_escape"),
            AttackPoint(3, "scan_scalar"),
            AttackPoint(4, "scan_key"),
            AttackPoint(5, "scan_flow_mapping", reachable=False),
            AttackPoint(6, "scan_flow_mapping", reachable=False),
            AttackPoint(7, "scan_document"),
            AttackPoint(8, "scan_document"),
            AttackPoint(9, "scan_document"),
            AttackPoint(10, "scan_document"),
        ],
        perf_input_builder=perf_input,
        description="line-oriented YAML scanner (libyaml stand-in)",
    )
)
