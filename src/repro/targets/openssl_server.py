"""``openssl`` workload: a TLS-record server-side parser.

Mirrors the shape of the openssl server fuzzing driver the paper evaluates:
record-header parsing, handshake-message dispatch (a ``switch`` over message
types — the Figure 2 lowering question applies directly), cipher-suite
table lookups and extension parsing with length checks.
"""

from __future__ import annotations

from repro.targets.base import AttackPoint, TargetProgram, REGISTRY

SOURCE = r"""
byte suite_strength[16] = {0, 1, 1, 2, 2, 3, 3, 3, 2, 1, 0, 2, 3, 1, 2, 3};
int max_extensions = 16;

int read_u16(byte *buf, int pos) {
    return buf[pos] * 256 + buf[pos + 1];
}

int parse_cipher_suites(byte *buf, int len, int pos, int count, int *chosen) {
    int best = 0 - 1;
    int best_strength = 0 - 1;
    int i = 0;
    while (i < count && pos + 1 < len) {
        int suite = read_u16(buf, pos);
        int idx = suite & 15;
        /*@ATTACK_POINT:1@*/
        if (idx < 16) {
            int strength = suite_strength[idx];
            if (strength > best_strength) {
                best_strength = strength;
                best = suite;
            }
        }
        pos = pos + 2;
        i = i + 1;
    }
    chosen[0] = best;
    return pos;
}

int parse_extensions(byte *buf, int len, int pos, int *ext_types, int *ext_lens) {
    int count = 0;
    while (pos + 3 < len) {
        int ext_type = read_u16(buf, pos);
        int ext_len = read_u16(buf, pos + 2);
        pos = pos + 4;
        /*@ATTACK_POINT:2@*/
        if (count < max_extensions) {
            ext_types[count] = ext_type;
            ext_lens[count] = ext_len;
        }
        count = count + 1;
        pos = pos + ext_len;
    }
    return count;
}

int parse_client_hello(byte *buf, int len, int pos, byte *session, int *chosen) {
    if (pos + 34 > len) {
        return 0 - 1;
    }
    pos = pos + 2 + 32;
    int session_len = buf[pos];
    pos = pos + 1;
    /*@ATTACK_POINT:3@*/
    if (session_len <= 32) {
        int i = 0;
        while (i < session_len && pos + i < len) {
            session[i] = buf[pos + i];
            i = i + 1;
        }
    }
    pos = pos + session_len;
    if (pos + 1 >= len) {
        return 0 - 1;
    }
    int suites_len = read_u16(buf, pos);
    pos = pos + 2;
    pos = parse_cipher_suites(buf, len, pos, suites_len / 2, chosen);
    return pos;
}

int handle_handshake(byte *buf, int len, int pos, byte *session, int *chosen) {
    if (pos >= len) {
        return 0 - 1;
    }
    int msg_type = buf[pos];
    int result = 0;
    pos = pos + 4;
    switch (msg_type) {
        case 1: {
            result = parse_client_hello(buf, len, pos, session, chosen);
        }
        case 11: {
            /*@ATTACK_POINT:4@*/
            result = pos + 1;
        }
        case 16: {
            result = pos + 2;
        }
        default: {
            result = 0 - 2;
        }
    }
    return result;
}

int process_records(byte *buf, int len) {
    byte *session = malloc(64);
    int *chosen = malloc(8);
    int *ext_types = malloc(max_extensions * 8);
    int *ext_lens = malloc(max_extensions * 8);
    int pos = 0;
    int records = 0;
    int status = 0;
    while (pos + 4 < len) {
        int record_type = buf[pos];
        int record_len = read_u16(buf, pos + 3);
        pos = pos + 5;
        /*@ATTACK_POINT:5@*/
        if (record_len > len - pos) {
            record_len = len - pos;
        }
        if (record_type == 22) {
            status = handle_handshake(buf, len, pos, session, chosen);
            if (status > 0) {
                int ext_count = parse_extensions(buf, pos + record_len, status,
                                                 ext_types, ext_lens);
                records = records + ext_count;
            }
        } else {
            if (record_type == 23) {
                // Application data: checksum it.
                int sum = 0;
                int i = 0;
                while (i < record_len && pos + i < len) {
                    sum = sum + buf[pos + i];
                    i = i + 1;
                }
                records = records + (sum & 15);
            }
        }
        pos = pos + record_len;
        records = records + 1;
    }
    free(session);
    free(chosen);
    free(ext_types);
    free(ext_lens);
    return records;
}

int main() {
    byte buf[1024];
    int n = read_input(buf, 1024);
    if (n <= 0) {
        return 0;
    }
    return process_records(buf, n);
}
"""

SEEDS = [
    bytes([22, 3, 3, 0, 50, 1, 0, 0, 46, 3, 3]) + bytes(32) + bytes([4, 1, 2, 3, 4])
    + bytes([0, 4, 0, 5, 0, 9]) + bytes([0, 10, 0, 2, 0, 1]),
    bytes([23, 3, 3, 0, 8]) + b"appdata!",
    bytes([22, 3, 1, 0, 12, 11, 0, 0, 8]) + bytes(8),
]


def perf_input(size: int = 256) -> bytes:
    """A stream of handshake and application-data records."""
    out = bytearray()
    index = 0
    while len(out) < size:
        payload = bytes([1, 0, 0, 46, 3, 3]) + bytes(32) + bytes([4, 1, 2, 3, 4]) \
            + bytes([0, 8]) + bytes([0, index % 16, 0, (index + 5) % 16,
                                     0, (index + 9) % 16, 0, (index + 3) % 16])
        out += bytes([22, 3, 3, 0, len(payload)]) + payload
        out += bytes([23, 3, 3, 0, 6]) + b"%06d" % index
        index += 1
    return bytes(out[:size])


TARGET = REGISTRY.register(
    TargetProgram(
        name="openssl",
        source=SOURCE,
        seeds=SEEDS,
        attack_points=[
            AttackPoint(1, "parse_cipher_suites"),
            AttackPoint(2, "parse_extensions"),
            AttackPoint(3, "parse_client_hello"),
            AttackPoint(4, "handle_handshake"),
            AttackPoint(5, "process_records"),
        ],
        perf_input_builder=perf_input,
        description="TLS-record server parser (openssl server driver stand-in)",
    )
)
