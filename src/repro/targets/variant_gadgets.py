"""Standalone gadget-sample targets for the BTB/RSB/STL variants.

The classic ``gadgets`` target carries the Kocher (Spectre-PHT) samples;
these three targets do the same for the other speculation models: each is
a tiny driver around mini-C sources (in :mod:`repro.targets.gadget_samples`)
with **planted, architecturally safe** leaks that only a misprediction of
the corresponding variant can reach.  They are the golden-pinnable ground
truth of ``repro fuzz --variants ...`` and the variant-smoke CI job.

The attacker value comes from the ``attack_input()`` external, which reads
successive 8-byte windows of the raw fuzz input; the seeds therefore
encode out-of-bounds-but-redzone indices (the 16-byte victim arrays carry
32-byte ASan redzones) so even the seed replay detects the leaks.
"""

from __future__ import annotations

from repro.targets.base import TargetProgram, REGISTRY
from repro.targets.gadget_samples import VARIANT_GADGET_SOURCES


def _attack_window(*values: int) -> bytes:
    """Raw input whose successive ``attack_input()`` windows are ``values``."""
    return b"".join(value.to_bytes(8, "little") for value in values)


def _seeds() -> list:
    # One safe run plus redzone-hitting attacker indices (16-byte arrays
    # with 32-byte redzones: 16..47 is detectably out of bounds).
    return [
        b"\x01" + b"\x00" * 15,
        _attack_window(17, 19),
        _attack_window(40, 33),
    ]


def _perf_input(size: int) -> bytes:
    pattern = bytes((i * 29) % 48 for i in range(max(size, 1)))
    return pattern[:size]


_DESCRIPTIONS = {
    "btb": "indirect-call victims behind a trained branch-target buffer",
    "rsb": "return-stack over/underflow into stale recursive return sites",
    "stl": "store-to-load bypass of an index-sanitising store",
}

#: Variant capability lists.  ``gadgets-btb`` also carries genuine STL
#: gadgets: the ``f = victim; ... f(atk)`` function-pointer stores are
#: bypassable by the indirect call's pointer load, speculatively hijacking
#: the call to a stale victim — the CI golden pins those 2 sites.
_CAPABILITIES = {
    "btb": ["btb", "stl"],
    "rsb": ["rsb"],
    "stl": ["stl"],
}

VARIANT_GADGETS = {
    variant: REGISTRY.register(
        TargetProgram(
            name=f"gadgets-{variant}",
            source=source,
            seeds=_seeds(),
            attack_points=[],
            perf_input_builder=_perf_input,
            description=f"planted Spectre-{variant.upper()} samples: "
                        f"{_DESCRIPTIONS[variant]}",
            variants=list(_CAPABILITIES[variant]),
        )
    )
    for variant, source in sorted(VARIANT_GADGET_SOURCES.items())
}
