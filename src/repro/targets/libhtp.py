"""``libhtp`` workload: an HTTP/1.x request parser.

Mirrors libhtp's request-line and header parsing: method lookup against a
table, URL percent-decoding through a hex table, header-name hashing into a
bucket array and chunked-length parsing — all bounds-checked, input-indexed
accesses.
"""

from __future__ import annotations

from repro.targets.base import AttackPoint, TargetProgram, REGISTRY

SOURCE = r"""
byte method_table[8] = {3, 4, 4, 3, 6, 5, 7, 5};
int bucket_count = 32;

int hex_digit(int c) {
    if (c >= '0' && c <= '9') {
        return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
        return c - 'a' + 10;
    }
    if (c >= 'A' && c <= 'F') {
        return c - 'A' + 10;
    }
    return 0 - 1;
}

int parse_method(byte *req, int len) {
    int m = 0;
    if (len < 3) {
        return 0 - 1;
    }
    if (req[0] == 'G') { m = 1; }
    if (req[0] == 'P') { m = 2; }
    if (req[0] == 'D') { m = 3; }
    if (req[0] == 'H') { m = 4; }
    /*@ATTACK_POINT:1@*/
    if (m < 8) {
        return method_table[m];
    }
    return 0;
}

int decode_url(byte *url, int len, byte *out, int out_cap) {
    int out_len = 0;
    int i = 0;
    while (i < len) {
        int c = url[i];
        if (c == '%') {
            /*@ATTACK_POINT:2@*/
            if (i + 2 < len) {
                int hi = hex_digit(url[i + 1]);
                int lo = hex_digit(url[i + 2]);
                if (hi >= 0 && lo >= 0) {
                    c = hi * 16 + lo;
                    i = i + 2;
                }
            }
        }
        /*@ATTACK_POINT:3@*/
        if (out_len < out_cap) {
            out[out_len] = c;
        }
        out_len = out_len + 1;
        if (c == ' ') {
            break;
        }
        i = i + 1;
    }
    return out_len;
}

int hash_header(byte *name, int len) {
    int h = 5381;
    int i = 0;
    while (i < len) {
        h = h * 33 + name[i];
        i = i + 1;
    }
    return h & 31;
}

int parse_headers(byte *req, int len, int start, int *buckets, byte *values) {
    int pos = start;
    int header_count = 0;
    while (pos < len) {
        int name_start = pos;
        while (pos < len && req[pos] != ':' && req[pos] != 13) {
            pos = pos + 1;
        }
        if (pos >= len || req[pos] != ':') {
            break;
        }
        int name_len = pos - name_start;
        int bucket = hash_header(req + name_start, name_len);
        /*@ATTACK_POINT:4@*/
        if (bucket < bucket_count) {
            buckets[bucket] = buckets[bucket] + 1;
        }
        pos = pos + 1;
        int value_start = pos;
        while (pos < len && req[pos] != 13) {
            pos = pos + 1;
        }
        int value_len = pos - value_start;
        /*@ATTACK_POINT:5@*/
        if (value_len < 64) {
            if (header_count < 16) {
                memcpy(values + header_count * 64, req + value_start, value_len);
            }
        }
        header_count = header_count + 1;
        pos = pos + 2;
    }
    return header_count;
}

int parse_chunked(byte *body, int len, byte *out, int out_cap) {
    int pos = 0;
    int total = 0;
    while (pos < len) {
        int chunk_len = 0;
        while (pos < len) {
            int d = hex_digit(body[pos]);
            if (d < 0) {
                break;
            }
            chunk_len = chunk_len * 16 + d;
            pos = pos + 1;
        }
        pos = pos + 2;
        if (chunk_len == 0) {
            break;
        }
        /*@ATTACK_POINT:6@*/
        if (total + chunk_len < out_cap) {
            int j = 0;
            while (j < chunk_len && pos + j < len) {
                out[total + j] = body[pos + j];
                j = j + 1;
            }
        }
        total = total + chunk_len;
        pos = pos + chunk_len + 2;
    }
    return total;
}

int parse_request(byte *req, int len) {
    int *buckets = malloc(bucket_count * 8);
    byte *values = malloc(16 * 64);
    byte *decoded = malloc(256);
    byte *body = malloc(512);
    memset(buckets, 0, bucket_count * 8);
    int method = parse_method(req, len);
    if (method < 0) {
        return 0 - 1;
    }
    int url_start = 0;
    while (url_start < len && req[url_start] != ' ') {
        url_start = url_start + 1;
    }
    url_start = url_start + 1;
    int url_len = decode_url(req + url_start, len - url_start, decoded, 256);
    int header_start = url_start;
    while (header_start + 1 < len) {
        if (req[header_start] == 10) {
            header_start = header_start + 1;
            break;
        }
        header_start = header_start + 1;
    }
    int headers = parse_headers(req, len, header_start, buckets, values);
    int body_start = header_start;
    while (body_start + 3 < len) {
        if (req[body_start] == 13 && req[body_start + 2] == 13) {
            body_start = body_start + 4;
            break;
        }
        body_start = body_start + 1;
    }
    int body_len = 0;
    if (body_start < len) {
        /*@ATTACK_POINT:7@*/
        body_len = parse_chunked(req + body_start, len - body_start, body, 512);
    }
    free(buckets);
    free(values);
    free(decoded);
    free(body);
    return method + url_len + headers * 16 + body_len;
}

int main() {
    byte buf[1024];
    int n = read_input(buf, 1024);
    if (n <= 0) {
        return 0;
    }
    return parse_request(buf, n);
}
"""

SEEDS = [
    b"GET /index.html HTTP/1.1\r\nHost: example.com\r\nAccept: */*\r\n\r\n",
    b"POST /a%20b?q=1 HTTP/1.1\r\nContent-Type: text/plain\r\n\r\n5\r\nhello\r\n0\r\n",
    b"HEAD / HTTP/1.0\r\nUser-Agent: fuzz\r\n\r\n",
]


def perf_input(size: int = 256) -> bytes:
    """A request with many headers and a chunked body."""
    headers = [b"GET /path/%41%42%43/resource HTTP/1.1\r\n"]
    index = 0
    while sum(len(h) for h in headers) < size * 3 // 4:
        headers.append(b"X-Header-%d: value-%d\r\n" % (index, index))
        index += 1
    headers.append(b"\r\n")
    body = b"a\r\n0123456789\r\n0\r\n"
    return b"".join(headers) + body


TARGET = REGISTRY.register(
    TargetProgram(
        name="libhtp",
        source=SOURCE,
        seeds=SEEDS,
        attack_points=[
            AttackPoint(1, "parse_method"),
            AttackPoint(2, "decode_url"),
            AttackPoint(3, "decode_url"),
            AttackPoint(4, "parse_headers"),
            AttackPoint(5, "parse_headers"),
            AttackPoint(6, "parse_chunked"),
            AttackPoint(7, "parse_request"),
        ],
        perf_input_builder=perf_input,
        description="HTTP/1.x request parser (libhtp stand-in)",
    )
)
