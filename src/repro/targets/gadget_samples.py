"""Artificial Spectre-V1 gadget samples (Kocher's examples, paper §7.2).

The Table 3 methodology injects known-vulnerable code snippets ("the
Spectre examples") at fixed attack points of each workload, giving a solid
ground truth.  Each sample below is a mini-C snippet parameterised by an
instance index ``{n}`` so multiple injections never collide; the snippet's
input value comes from the ``attack_input()`` external, which is the single
attacker-direct taint source of this experiment (the regular input taint
sources are disabled, exactly as in the paper).

All samples share the canonical two-load structure of Listing 1:

* a bounds check on an attacker-controlled index (the mispredicted branch),
* an out-of-bounds load of a "secret" (L1),
* a second, secret-dependent access that transmits it (L2).

The victim arrays are heap-allocated inside the snippet so ASan redzones
surround them — matching the evaluation setups of SpecFuzz/SpecTaint, where
the sanitizer-visible out-of-bounds access is what makes the injected
gadget detectable at all.
"""

from __future__ import annotations

from typing import List

#: Globals each gadget instance contributes (appended once per instance).
GADGET_GLOBALS_TEMPLATE = r"""
int atk_size_{n} = 16;
int atk_sink_{n} = 0;
"""

#: Kocher-style gadget variants.  ``{n}`` is the instance index.
GADGET_TEMPLATES: List[str] = [
    # Variant 1: the canonical bounds-check-bypass gadget (Listing 1).
    r"""
    {
        int atk_idx_{n} = attack_input();
        byte *atk_arr1_{n} = malloc(16);
        byte *atk_arr2_{n} = malloc(512);
        if (atk_idx_{n} < atk_size_{n}) {
            atk_sink_{n} = atk_sink_{n} + atk_arr2_{n}[atk_arr1_{n}[atk_idx_{n}] * 2];
        }
        free(atk_arr1_{n});
        free(atk_arr2_{n});
    }
    """,
    # Variant 2: index masked after the check (Kocher example 10 flavour) —
    # the mask is too wide to actually protect the access.
    r"""
    {
        int atk_idx_{n} = attack_input();
        byte *atk_arr1_{n} = malloc(16);
        byte *atk_arr2_{n} = malloc(512);
        if (atk_idx_{n} < atk_size_{n}) {
            int atk_off_{n} = atk_idx_{n} & 1023;
            atk_sink_{n} = atk_sink_{n} + atk_arr2_{n}[atk_arr1_{n}[atk_off_{n}]];
        }
        free(atk_arr1_{n});
        free(atk_arr2_{n});
    }
    """,
    # Variant 3: the comparison is split across two branches (example 5
    # flavour), so the gadget needs a deeper misprediction pattern.
    r"""
    {
        int atk_idx_{n} = attack_input();
        byte *atk_arr1_{n} = malloc(16);
        byte *atk_arr2_{n} = malloc(512);
        if (atk_idx_{n} >= 0) {
            if (atk_idx_{n} < atk_size_{n}) {
                int atk_secret_{n} = atk_arr1_{n}[atk_idx_{n}];
                atk_sink_{n} = atk_sink_{n} + atk_arr2_{n}[atk_secret_{n} * 4];
            }
        }
        free(atk_arr1_{n});
        free(atk_arr2_{n});
    }
    """,
    # Variant 4: the leaked value influences a branch instead of a pointer —
    # a port-contention transmitter (only Teapot's policy classifies these).
    r"""
    {
        int atk_idx_{n} = attack_input();
        byte *atk_arr1_{n} = malloc(16);
        if (atk_idx_{n} < atk_size_{n}) {
            int atk_secret_{n} = atk_arr1_{n}[atk_idx_{n}];
            if (atk_secret_{n} > 64) {
                atk_sink_{n} = atk_sink_{n} + 1;
            }
        }
        free(atk_arr1_{n});
    }
    """,
]


def gadget_snippet(instance: int, variant: int = 0) -> str:
    """The mini-C statement block for gadget ``instance`` of ``variant``."""
    template = GADGET_TEMPLATES[variant % len(GADGET_TEMPLATES)]
    return template.replace("{n}", str(instance))


def gadget_globals(instance: int) -> str:
    """The global declarations needed by gadget ``instance``."""
    return GADGET_GLOBALS_TEMPLATE.replace("{n}", str(instance))
