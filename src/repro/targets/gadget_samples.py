"""Artificial Spectre-V1 gadget samples (Kocher's examples, paper §7.2).

The Table 3 methodology injects known-vulnerable code snippets ("the
Spectre examples") at fixed attack points of each workload, giving a solid
ground truth.  Each sample below is a mini-C snippet parameterised by an
instance index ``{n}`` so multiple injections never collide; the snippet's
input value comes from the ``attack_input()`` external, which is the single
attacker-direct taint source of this experiment (the regular input taint
sources are disabled, exactly as in the paper).

All samples share the canonical two-load structure of Listing 1:

* a bounds check on an attacker-controlled index (the mispredicted branch),
* an out-of-bounds load of a "secret" (L1),
* a second, secret-dependent access that transmits it (L2).

The victim arrays are heap-allocated inside the snippet so ASan redzones
surround them — matching the evaluation setups of SpecFuzz/SpecTaint, where
the sanitizer-visible out-of-bounds access is what makes the injected
gadget detectable at all.
"""

from __future__ import annotations

from typing import List

#: Globals each gadget instance contributes (appended once per instance).
GADGET_GLOBALS_TEMPLATE = r"""
int atk_size_{n} = 16;
int atk_sink_{n} = 0;
"""

#: Kocher-style gadget variants.  ``{n}`` is the instance index.
GADGET_TEMPLATES: List[str] = [
    # Variant 1: the canonical bounds-check-bypass gadget (Listing 1).
    r"""
    {
        int atk_idx_{n} = attack_input();
        byte *atk_arr1_{n} = malloc(16);
        byte *atk_arr2_{n} = malloc(512);
        if (atk_idx_{n} < atk_size_{n}) {
            atk_sink_{n} = atk_sink_{n} + atk_arr2_{n}[atk_arr1_{n}[atk_idx_{n}] * 2];
        }
        free(atk_arr1_{n});
        free(atk_arr2_{n});
    }
    """,
    # Variant 2: index masked after the check (Kocher example 10 flavour) —
    # the mask is too wide to actually protect the access.
    r"""
    {
        int atk_idx_{n} = attack_input();
        byte *atk_arr1_{n} = malloc(16);
        byte *atk_arr2_{n} = malloc(512);
        if (atk_idx_{n} < atk_size_{n}) {
            int atk_off_{n} = atk_idx_{n} & 1023;
            atk_sink_{n} = atk_sink_{n} + atk_arr2_{n}[atk_arr1_{n}[atk_off_{n}]];
        }
        free(atk_arr1_{n});
        free(atk_arr2_{n});
    }
    """,
    # Variant 3: the comparison is split across two branches (example 5
    # flavour), so the gadget needs a deeper misprediction pattern.
    r"""
    {
        int atk_idx_{n} = attack_input();
        byte *atk_arr1_{n} = malloc(16);
        byte *atk_arr2_{n} = malloc(512);
        if (atk_idx_{n} >= 0) {
            if (atk_idx_{n} < atk_size_{n}) {
                int atk_secret_{n} = atk_arr1_{n}[atk_idx_{n}];
                atk_sink_{n} = atk_sink_{n} + atk_arr2_{n}[atk_secret_{n} * 4];
            }
        }
        free(atk_arr1_{n});
        free(atk_arr2_{n});
    }
    """,
    # Variant 4: the leaked value influences a branch instead of a pointer —
    # a port-contention transmitter (only Teapot's policy classifies these).
    r"""
    {
        int atk_idx_{n} = attack_input();
        byte *atk_arr1_{n} = malloc(16);
        if (atk_idx_{n} < atk_size_{n}) {
            int atk_secret_{n} = atk_arr1_{n}[atk_idx_{n}];
            if (atk_secret_{n} > 64) {
                atk_sink_{n} = atk_sink_{n} + 1;
            }
        }
        free(atk_arr1_{n});
    }
    """,
]


def gadget_snippet(instance: int, variant: int = 0) -> str:
    """The mini-C statement block for gadget ``instance`` of ``variant``."""
    template = GADGET_TEMPLATES[variant % len(GADGET_TEMPLATES)]
    return template.replace("{n}", str(instance))


def gadget_globals(instance: int) -> str:
    """The global declarations needed by gadget ``instance``."""
    return GADGET_GLOBALS_TEMPLATE.replace("{n}", str(instance))


# ---------------------------------------------------------------------------
# Planted gadgets for the non-PHT speculation variants (BTB / RSB / STL)
# ---------------------------------------------------------------------------
#
# Every source below is architecturally safe: the attacker value only
# reaches the leaking access on a *mispredicted* path of the corresponding
# speculation model, so any report on these programs is a true positive of
# that variant.  Each program plants (at least) two distinct leak sites,
# one cache-transmitting two-load gadget and one port-contention gadget.

#: Spectre-BTB: two victim functions are architecturally called (with safe
#: indices) through a function pointer, training the target-history table;
#: the final calls resolve to a benign function while the attacker index
#: is live in the argument register, so the modelled BTB mispredicts into
#: a victim with the attacker's index.
BTB_SOURCE = r"""
int bt_sink = 0;
byte *bt_a1 = 0;
byte *bt_a2 = 0;

int bt_victim_cache(int idx) {
    bt_sink = bt_sink + bt_a2[bt_a1[idx] * 2];
    return 0;
}

int bt_victim_port(int idx) {
    if (bt_a1[idx] > 64) {
        bt_sink = bt_sink + 1;
    }
    return 0;
}

int bt_benign(int idx) {
    return idx + 1;
}

int main() {
    byte buf[16];
    int n = read_input(buf, 16);
    if (n < 1) {
        return 0;
    }
    bt_a1 = malloc(16);
    bt_a2 = malloc(512);
    int atk = attack_input();
    int f = bt_victim_cache;
    f(3);
    f = bt_victim_port;
    f(5);
    f = bt_benign;
    f(atk);
    f(atk);
    free(bt_a1);
    free(bt_a2);
    return 0;
}
"""

#: Spectre-RSB: shallow recursion deeper than the modelled return-stack
#: buffer overwrites its oldest entries; the victims' returns then
#: mispredict to the stale recursive return sites, whose code indexes with
#: the *returned* value — architecturally always 0, but the mispredicting
#: return carries the raw attacker value in the return register.
RSB_SOURCE = r"""
byte *rs_a1 = 0;
byte *rs_a2 = 0;
int rs_atk = 0;
int rs_sink = 0;
int rs_sink2 = 0;

int rs_deep(int d) {
    if (d > 0) {
        int r = rs_deep(d - 1);
        rs_sink = rs_sink + rs_a2[rs_a1[r] * 2];
        return r;
    }
    return 0;
}

int rs_victim() {
    rs_deep(5);
    return rs_atk;
}

int rs_deep2(int d) {
    if (d > 0) {
        int r2 = rs_deep2(d - 1);
        if (rs_a1[r2] > 64) {
            rs_sink2 = rs_sink2 + 1;
        }
        return r2;
    }
    return 0;
}

int rs_victim2() {
    rs_deep2(5);
    return rs_atk;
}

int main() {
    byte buf[16];
    int n = read_input(buf, 16);
    if (n < 1) {
        return 0;
    }
    rs_a1 = malloc(16);
    rs_a2 = malloc(512);
    rs_atk = attack_input();
    rs_victim();
    rs_victim2();
    free(rs_a1);
    free(rs_a2);
    return 0;
}
"""

#: Spectre-STL: a stack slot briefly holds the raw attacker value before a
#: younger store overwrites it with a safe index; the dependent load can
#: speculatively bypass the overwriting store and index with the stale
#: attacker value.
STL_SOURCE = r"""
byte *st_a1 = 0;
byte *st_a2 = 0;
int st_sink = 0;

int st_victim_cache() {
    int slot = attack_input();
    slot = 3;
    st_sink = st_sink + st_a2[st_a1[slot] * 2];
    return 0;
}

int st_victim_port() {
    int slot2 = attack_input();
    slot2 = 1;
    if (st_a1[slot2] > 64) {
        st_sink = st_sink + 1;
    }
    return 0;
}

int main() {
    byte buf[16];
    int n = read_input(buf, 16);
    if (n < 1) {
        return 0;
    }
    st_a1 = malloc(16);
    st_a2 = malloc(512);
    st_victim_cache();
    st_victim_port();
    free(st_a1);
    free(st_a2);
    return 0;
}
"""

#: Sources of the standalone per-variant gadget targets, keyed by the
#: speculation-model name whose planted leaks they carry.
VARIANT_GADGET_SOURCES = {
    "btb": BTB_SOURCE,
    "rsb": RSB_SOURCE,
    "stl": STL_SOURCE,
}
