"""TELF: the binary container format for TVM programs.

Plays the role of x86-64 Linux ELF in the paper.  A :class:`TelfBinary`
carries:

* raw section bytes (``.text``, ``.rodata``, ``.data``) placed at fixed
  virtual addresses (see :mod:`repro.loader.layout`),
* a symbol table (function and data-object symbols with sizes),
* an import table naming the external runtime functions the program calls
  (``malloc``, ``fread`` ... — the stand-ins for uninstrumented libc),
* a relocation table recording where code/data pointers are materialised,
  which the disassembler's symbolization pass consumes,
* the entry symbol.

Binaries can be serialised to and parsed from a compact binary file format
(magic ``TELF``), so the full pipeline — compile, write to disk, load the
"COTS" artefact, disassemble, rewrite, re-serialise — is exercised end to
end.
"""

from repro.loader.layout import MemoryLayout, DEFAULT_LAYOUT
from repro.loader.binary_format import (
    DataObject,
    Relocation,
    RelocationKind,
    Section,
    Symbol,
    SymbolKind,
    TelfBinary,
)
from repro.loader.serialize import (
    TelfFormatError,
    load_binary,
    loads_binary,
    save_binary,
    dumps_binary,
)

__all__ = [
    "MemoryLayout",
    "DEFAULT_LAYOUT",
    "DataObject",
    "Relocation",
    "RelocationKind",
    "Section",
    "Symbol",
    "SymbolKind",
    "TelfBinary",
    "TelfFormatError",
    "load_binary",
    "loads_binary",
    "save_binary",
    "dumps_binary",
]
