"""Virtual address-space layout of TVM processes.

The layout follows the paper's Table 2 (user memory plus ASan shadow plus
DIFT tag shadow):

========  ======================  ======================
Region    Start                   End
========  ======================  ======================
HighMem   ``0x6000_0000_0000``    ``0x7fff_ffff_ffff``
HighTag   ``0x4000_0000_0000``    ``0x5fff_ffff_ffff``
AsanShdw  ``0x1000_0000_0000``    ``0x1fff_ffff_ffff``
LowTag    ``0x2000_0000_0000``    ``0x2000_7fff_7fff``
LowMem    ``0x0``                 ``0x7fff_7fff``
========  ======================  ======================

The stack lives in HighMem; code, globals and the heap live in LowMem.  The
DIFT tag shadow has a byte-to-byte mapping to user memory obtained by
flipping bit 45 of the address (paper §6.2.2): HighMem ``0x6...`` maps to
HighTag ``0x4...`` and LowMem ``0x0000_xxxx`` maps to LowTag
``0x2000_xxxx``.  The ASan shadow uses the classic ``(addr >> 3) + offset``
mapping with an offset chosen so the shadow never collides with user memory
or the tag shadow.

The absolute values differ slightly from the paper's Table 1/2 (which are
dictated by Linux's mmap layout); the *structural* invariants — disjoint
regions, bit-45 flip for tags, 8-to-1 compression for ASan — are identical
and are asserted by ``tests/sanitizers/test_layout.py``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryLayout:
    """Address-space layout constants for a TVM process."""

    # -- user memory -------------------------------------------------------
    text_base: int = 0x0001_0000
    rodata_base: int = 0x0100_0000
    data_base: int = 0x0200_0000
    heap_base: int = 0x0400_0000
    lowmem_end: int = 0x7FFF_7FFF

    highmem_start: int = 0x6000_0000_0000
    highmem_end: int = 0x7FFF_FFFF_FFFF
    stack_top: int = 0x7FFF_FFFF_FF00
    stack_size: int = 1 << 20

    # -- sanitizer shadows ---------------------------------------------------
    asan_shadow_offset: int = 0x1000_0000_0000
    asan_shadow_scale: int = 3
    tag_flip_bit: int = 1 << 45
    lowtag_start: int = 0x2000_0000_0000
    lowtag_end: int = 0x2000_7FFF_7FFF
    hightag_start: int = 0x4000_0000_0000
    hightag_end: int = 0x5FFF_FFFF_FFFF

    # -- derived queries ------------------------------------------------------
    def in_lowmem(self, addr: int) -> bool:
        """Whether ``addr`` lies in the LowMem user region."""
        return 0 <= addr <= self.lowmem_end

    def in_highmem(self, addr: int) -> bool:
        """Whether ``addr`` lies in the HighMem user region (stack)."""
        return self.highmem_start <= addr <= self.highmem_end

    def in_user_memory(self, addr: int) -> bool:
        """Whether ``addr`` is a user-accessible address."""
        return self.in_lowmem(addr) or self.in_highmem(addr)

    def in_text(self, addr: int, text_size: int) -> bool:
        """Whether ``addr`` falls inside the text section of ``text_size`` bytes."""
        return self.text_base <= addr < self.text_base + text_size

    def asan_shadow_address(self, addr: int) -> int:
        """ASan shadow byte address for user address ``addr``."""
        return (addr >> self.asan_shadow_scale) + self.asan_shadow_offset

    def tag_shadow_address(self, addr: int) -> int:
        """DIFT tag shadow address for user address ``addr`` (flip bit 45)."""
        return addr ^ self.tag_flip_bit

    def stack_bottom(self) -> int:
        """Lowest valid stack address for the default stack size."""
        return self.stack_top - self.stack_size

    def validate(self) -> None:
        """Check the structural invariants of the layout.

        Raises:
            ValueError: if any region overlaps another or a shadow mapping
                would land inside user memory.
        """
        regions = [
            ("LowMem", 0, self.lowmem_end),
            ("LowTag", self.lowtag_start, self.lowtag_end),
            ("AsanShadow", self.asan_shadow_offset,
             self.asan_shadow_address(self.highmem_end)),
            ("HighTag", self.hightag_start, self.hightag_end),
            ("HighMem", self.highmem_start, self.highmem_end),
        ]
        ordered = sorted(regions, key=lambda r: r[1])
        for (name_a, _, end_a), (name_b, start_b, _) in zip(ordered, ordered[1:]):
            if end_a >= start_b:
                raise ValueError(f"memory regions {name_a} and {name_b} overlap")
        # Tag shadow of both user regions must land inside the tag regions.
        if not (self.lowtag_start <= self.tag_shadow_address(0) <= self.lowtag_end):
            raise ValueError("LowMem tag shadow escapes LowTag")
        if not (self.lowtag_start
                <= self.tag_shadow_address(self.lowmem_end)
                <= self.lowtag_end):
            raise ValueError("LowMem tag shadow escapes LowTag")
        if not (self.hightag_start
                <= self.tag_shadow_address(self.highmem_start)
                <= self.hightag_end):
            raise ValueError("HighMem tag shadow escapes HighTag")
        if not (self.hightag_start
                <= self.tag_shadow_address(self.highmem_end)
                <= self.hightag_end):
            raise ValueError("HighMem tag shadow escapes HighTag")


#: The layout used throughout the library unless a test overrides it.
DEFAULT_LAYOUT = MemoryLayout()
DEFAULT_LAYOUT.validate()
