"""In-memory model of a TELF binary (the x86-64 ELF stand-in).

A :class:`TelfBinary` is what the assembler produces, what gets written to
disk, and what the disassembler takes apart.  It deliberately stores *only*
what a stripped-of-source COTS artefact would carry: raw section bytes,
function/object symbols, imports and relocations — no basic blocks, no CFG,
no types.  Everything else must be recovered by :mod:`repro.disasm`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.loader.layout import DEFAULT_LAYOUT, MemoryLayout


class SymbolKind(enum.Enum):
    """Kind of a symbol-table entry."""

    FUNCTION = "function"
    OBJECT = "object"


class RelocationKind(enum.Enum):
    """Kind of a relocation entry.

    ``ABS64_DATA``
        an 8-byte absolute pointer stored in a data section (function
        pointers in globals, jump-table entries).
    ``ABS64_CODE``
        an 8-byte absolute address materialised as an instruction immediate
        (``mov rX, <symbol>`` / ``lea``-like address formation).
    """

    ABS64_DATA = "abs64_data"
    ABS64_CODE = "abs64_code"


@dataclass
class Symbol:
    """A symbol-table entry."""

    name: str
    address: int
    size: int
    kind: SymbolKind
    section: str

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` falls inside this symbol's extent."""
        return self.address <= addr < self.address + max(self.size, 1)


@dataclass
class Relocation:
    """A relocation entry: the pointer stored at ``address`` refers to ``symbol + addend``."""

    address: int
    symbol: str
    addend: int
    kind: RelocationKind


@dataclass
class Section:
    """A loadable section: raw bytes at a fixed virtual address."""

    name: str
    address: int
    data: bytes

    @property
    def size(self) -> int:
        """Section size in bytes."""
        return len(self.data)

    @property
    def end(self) -> int:
        """One past the last valid address of the section."""
        return self.address + len(self.data)

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` falls inside the section."""
        return self.address <= addr < self.end


@dataclass
class DataObject:
    """A global data object at the assembly level (pre-layout).

    Used by the assembler and the mini-C code generator; once laid out it
    becomes bytes in ``.data``/``.rodata`` plus a :class:`Symbol` and
    possibly :class:`Relocation` entries for embedded pointers.
    """

    name: str
    data: bytes
    section: str = ".data"
    align: int = 8
    #: (offset, symbol, addend) triples for 8-byte pointer slots inside ``data``.
    pointer_slots: List[tuple] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Object size in bytes."""
        return len(self.data)


@dataclass
class TelfBinary:
    """A complete TVM binary image."""

    sections: Dict[str, Section]
    symbols: List[Symbol]
    imports: List[str]
    relocations: List[Relocation]
    entry: str = "main"
    layout: MemoryLayout = field(default_factory=lambda: DEFAULT_LAYOUT)
    metadata: Dict[str, str] = field(default_factory=dict)

    # -- section helpers -----------------------------------------------------
    @property
    def text(self) -> Section:
        """The executable ``.text`` section."""
        return self.sections[".text"]

    def section_at(self, addr: int) -> Optional[Section]:
        """The section containing ``addr``, or ``None``."""
        for section in self.sections.values():
            if section.contains(addr):
                return section
        return None

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes of initialised section data at ``addr``.

        Raises:
            KeyError: if the range is not covered by a single section.
        """
        section = self.section_at(addr)
        if section is None or addr + size > section.end:
            raise KeyError(f"address range {addr:#x}+{size} not in any section")
        start = addr - section.address
        return section.data[start:start + size]

    # -- symbol helpers --------------------------------------------------------
    def symbol(self, name: str) -> Symbol:
        """Look up a symbol by name.

        Raises:
            KeyError: if no symbol has that name.
        """
        for sym in self.symbols:
            if sym.name == name:
                return sym
        raise KeyError(f"no symbol named {name!r}")

    def has_symbol(self, name: str) -> bool:
        """Whether a symbol with ``name`` exists."""
        return any(sym.name == name for sym in self.symbols)

    def function_symbols(self) -> List[Symbol]:
        """All function symbols, sorted by address."""
        funcs = [s for s in self.symbols if s.kind is SymbolKind.FUNCTION]
        return sorted(funcs, key=lambda s: s.address)

    def object_symbols(self) -> List[Symbol]:
        """All data-object symbols, sorted by address."""
        objs = [s for s in self.symbols if s.kind is SymbolKind.OBJECT]
        return sorted(objs, key=lambda s: s.address)

    def symbol_at(self, addr: int) -> Optional[Symbol]:
        """The symbol whose extent contains ``addr``, or ``None``."""
        for sym in self.symbols:
            if sym.contains(addr):
                return sym
        return None

    def function_at(self, addr: int) -> Optional[Symbol]:
        """The function symbol whose extent contains ``addr``, or ``None``."""
        for sym in self.function_symbols():
            if sym.contains(addr):
                return sym
        return None

    def entry_address(self) -> int:
        """Virtual address of the entry function."""
        return self.symbol(self.entry).address

    # -- import helpers --------------------------------------------------------
    def import_index(self, name: str) -> int:
        """Index of an imported external function.

        Raises:
            KeyError: if the function is not imported.
        """
        try:
            return self.imports.index(name)
        except ValueError as exc:
            raise KeyError(f"{name!r} is not imported") from exc

    def import_name(self, index: int) -> str:
        """Name of the imported function with the given index."""
        return self.imports[index]

    # -- relocation helpers ------------------------------------------------------
    def relocations_at(self, addr: int) -> List[Relocation]:
        """Relocations whose patch site is exactly ``addr``."""
        return [r for r in self.relocations if r.address == addr]

    def summary(self) -> str:
        """A short human-readable description of the binary."""
        lines = [f"TELF binary (entry={self.entry})"]
        for name, sec in sorted(self.sections.items()):
            lines.append(f"  {name:8s} {sec.address:#10x}  {sec.size} bytes")
        lines.append(f"  symbols: {len(self.symbols)}  imports: {len(self.imports)}"
                     f"  relocations: {len(self.relocations)}")
        return "\n".join(lines)
