"""Serialisation of TELF binaries to and from a compact on-disk format.

The format is deliberately simple but genuinely binary, so that the "COTS"
artefacts handled by the pipeline really are opaque byte blobs:

``TELF`` magic, format version, then length-prefixed tables for sections,
symbols, imports, relocations and metadata.  All integers are little-endian.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Dict, List

from repro.loader.binary_format import (
    Relocation,
    RelocationKind,
    Section,
    Symbol,
    SymbolKind,
    TelfBinary,
)
from repro.loader.layout import DEFAULT_LAYOUT

MAGIC = b"TELF"
VERSION = 1


class TelfFormatError(ValueError):
    """Raised when parsing a malformed TELF image."""


def _write_u32(out: BinaryIO, value: int) -> None:
    out.write(struct.pack("<I", value))


def _write_u64(out: BinaryIO, value: int) -> None:
    out.write(struct.pack("<Q", value))


def _write_str(out: BinaryIO, text: str) -> None:
    data = text.encode("utf-8")
    _write_u32(out, len(data))
    out.write(data)


def _write_bytes(out: BinaryIO, data: bytes) -> None:
    _write_u32(out, len(data))
    out.write(data)


def _read_exact(src: BinaryIO, size: int) -> bytes:
    data = src.read(size)
    if len(data) != size:
        raise TelfFormatError("unexpected end of file")
    return data


def _read_u32(src: BinaryIO) -> int:
    return struct.unpack("<I", _read_exact(src, 4))[0]


def _read_u64(src: BinaryIO) -> int:
    return struct.unpack("<Q", _read_exact(src, 8))[0]


def _read_str(src: BinaryIO) -> str:
    length = _read_u32(src)
    return _read_exact(src, length).decode("utf-8")


def _read_bytes(src: BinaryIO) -> bytes:
    length = _read_u32(src)
    return _read_exact(src, length)


def dumps_binary(binary: TelfBinary) -> bytes:
    """Serialise a binary to bytes."""
    out = io.BytesIO()
    out.write(MAGIC)
    _write_u32(out, VERSION)
    _write_str(out, binary.entry)

    _write_u32(out, len(binary.sections))
    for name in sorted(binary.sections):
        section = binary.sections[name]
        _write_str(out, section.name)
        _write_u64(out, section.address)
        _write_bytes(out, section.data)

    _write_u32(out, len(binary.symbols))
    for sym in binary.symbols:
        _write_str(out, sym.name)
        _write_u64(out, sym.address)
        _write_u64(out, sym.size)
        _write_str(out, sym.kind.value)
        _write_str(out, sym.section)

    _write_u32(out, len(binary.imports))
    for name in binary.imports:
        _write_str(out, name)

    _write_u32(out, len(binary.relocations))
    for rel in binary.relocations:
        _write_u64(out, rel.address)
        _write_str(out, rel.symbol)
        _write_u64(out, rel.addend & ((1 << 64) - 1))
        _write_str(out, rel.kind.value)

    _write_u32(out, len(binary.metadata))
    for key in sorted(binary.metadata):
        _write_str(out, key)
        _write_str(out, binary.metadata[key])

    return out.getvalue()


def loads_binary(data: bytes) -> TelfBinary:
    """Parse a binary from bytes.

    Raises:
        TelfFormatError: if the image is malformed.
    """
    src = io.BytesIO(data)
    magic = src.read(4)
    if magic != MAGIC:
        raise TelfFormatError(f"bad magic {magic!r}")
    version = _read_u32(src)
    if version != VERSION:
        raise TelfFormatError(f"unsupported TELF version {version}")
    entry = _read_str(src)

    sections: Dict[str, Section] = {}
    for _ in range(_read_u32(src)):
        name = _read_str(src)
        address = _read_u64(src)
        payload = _read_bytes(src)
        sections[name] = Section(name=name, address=address, data=payload)

    symbols: List[Symbol] = []
    for _ in range(_read_u32(src)):
        name = _read_str(src)
        address = _read_u64(src)
        size = _read_u64(src)
        kind = SymbolKind(_read_str(src))
        section = _read_str(src)
        symbols.append(Symbol(name, address, size, kind, section))

    imports = [_read_str(src) for _ in range(_read_u32(src))]

    relocations: List[Relocation] = []
    for _ in range(_read_u32(src)):
        address = _read_u64(src)
        symbol = _read_str(src)
        addend = _read_u64(src)
        if addend >= 1 << 63:
            addend -= 1 << 64
        kind = RelocationKind(_read_str(src))
        relocations.append(Relocation(address, symbol, addend, kind))

    metadata = {}
    for _ in range(_read_u32(src)):
        key = _read_str(src)
        metadata[key] = _read_str(src)

    return TelfBinary(
        sections=sections,
        symbols=symbols,
        imports=imports,
        relocations=relocations,
        entry=entry,
        layout=DEFAULT_LAYOUT,
        metadata=metadata,
    )


def save_binary(binary: TelfBinary, path: str) -> None:
    """Write a binary image to ``path``."""
    with open(path, "wb") as handle:
        handle.write(dumps_binary(binary))


def load_binary(path: str) -> TelfBinary:
    """Read a binary image from ``path``."""
    with open(path, "rb") as handle:
        return loads_binary(handle.read())
