"""Coverage-guided fuzzing (the honggfuzz stand-in of the paper's Figure 3)."""

from repro.fuzzing.corpus import KEEP_REASONS, Corpus, CorpusEntry
from repro.fuzzing.mutators import Mutator
from repro.fuzzing.fuzzer import CampaignResult, Fuzzer, FuzzTarget

__all__ = [
    "KEEP_REASONS",
    "Corpus",
    "CorpusEntry",
    "Mutator",
    "CampaignResult",
    "Fuzzer",
    "FuzzTarget",
]
