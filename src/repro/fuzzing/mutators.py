"""Input mutators (a compact version of honggfuzz's mutation strategies).

All mutations are driven by a seeded :class:`random.Random`, so campaigns
are fully deterministic and the experiment tables regenerate identically.
"""

from __future__ import annotations

import random
import struct
from typing import Callable, List

#: "Interesting" values substituted into inputs, mirroring common fuzzers:
#: bounds-check boundary values are what flushes out Spectre-V1 gadgets.
INTERESTING_BYTES = [0, 1, 0x7F, 0x80, 0xFF, 0x10, 0x20, 0x40]
INTERESTING_WORDS = [0, 1, 0xFF, 0x100, 0x7FFF, 0x8000, 0xFFFF, 0x7FFFFFFF,
                     0xFFFFFFFF, 0x100000000, 0x7FFFFFFFFFFFFFFF]


class Mutator:
    """Applies a randomly chosen mutation strategy to an input."""

    def __init__(self, rng: random.Random, max_size: int = 4096) -> None:
        self.rng = rng
        self.max_size = max_size
        self._strategies: List[Callable[[bytearray], bytearray]] = [
            self._flip_bit,
            self._replace_byte,
            self._insert_byte,
            self._delete_byte,
            self._interesting_byte,
            self._interesting_word,
            self._duplicate_block,
            self._truncate,
            self._append_random,
        ]

    def mutate(self, data: bytes) -> bytes:
        """Produce a mutated copy of ``data`` (never empty)."""
        buf = bytearray(data) if data else bytearray([0])
        rounds = self.rng.randint(1, 4)
        for _ in range(rounds):
            strategy = self.rng.choice(self._strategies)
            buf = strategy(buf)
            if not buf:
                buf = bytearray([self.rng.randrange(256)])
            if len(buf) > self.max_size:
                buf = buf[: self.max_size]
        return bytes(buf)

    # -- strategies ----------------------------------------------------------
    def _flip_bit(self, buf: bytearray) -> bytearray:
        pos = self.rng.randrange(len(buf))
        buf[pos] ^= 1 << self.rng.randrange(8)
        return buf

    def _replace_byte(self, buf: bytearray) -> bytearray:
        pos = self.rng.randrange(len(buf))
        buf[pos] = self.rng.randrange(256)
        return buf

    def _insert_byte(self, buf: bytearray) -> bytearray:
        pos = self.rng.randrange(len(buf) + 1)
        buf.insert(pos, self.rng.randrange(256))
        return buf

    def _delete_byte(self, buf: bytearray) -> bytearray:
        if len(buf) > 1:
            del buf[self.rng.randrange(len(buf))]
        return buf

    def _interesting_byte(self, buf: bytearray) -> bytearray:
        pos = self.rng.randrange(len(buf))
        buf[pos] = self.rng.choice(INTERESTING_BYTES)
        return buf

    def _interesting_word(self, buf: bytearray) -> bytearray:
        value = self.rng.choice(INTERESTING_WORDS)
        width = self.rng.choice([2, 4, 8])
        encoded = (value & ((1 << (8 * width)) - 1)).to_bytes(width, "little")
        if len(buf) < width:
            buf.extend(encoded[len(buf):])
        pos = self.rng.randrange(max(len(buf) - width + 1, 1))
        buf[pos:pos + width] = encoded
        return buf

    def _duplicate_block(self, buf: bytearray) -> bytearray:
        if len(buf) < 2:
            return buf
        start = self.rng.randrange(len(buf) - 1)
        length = self.rng.randint(1, min(16, len(buf) - start))
        block = buf[start:start + length]
        pos = self.rng.randrange(len(buf) + 1)
        return buf[:pos] + block + buf[pos:]

    def _truncate(self, buf: bytearray) -> bytearray:
        if len(buf) > 2:
            return buf[: self.rng.randint(1, len(buf))]
        return buf

    def _append_random(self, buf: bytearray) -> bytearray:
        count = self.rng.randint(1, 8)
        buf.extend(self.rng.randrange(256) for _ in range(count))
        return buf
