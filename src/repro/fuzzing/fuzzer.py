"""Coverage-guided mutational fuzzer.

Drives an instrumented binary (wrapped in a :class:`FuzzTarget`) over
mutated inputs, keeping those that reach new *normal* or *speculative*
coverage (paper §6.3 tracks the two separately) and collecting the gadget
reports the detection policy raises.  The loop is a faithful, deterministic
miniature of the honggfuzz persistent-mode campaigns used in the paper's
experiments: the paper fuzzes each binary for 24 hours, this reproduction
fuzzes for a configurable number of iterations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fuzzing.corpus import Corpus
from repro.fuzzing.mutators import Mutator
from repro.runtime.emulator import ExecutionResult
from repro.sanitizers.reports import ReportCollection
from repro.telemetry.context import active as _active_telemetry
from repro.telemetry.metrics import merge_counts


class FuzzTarget:
    """Adapter between the fuzzer and an executable runtime.

    Any object with a ``run(data) -> ExecutionResult`` method and an
    optional ``coverage`` attribute (a
    :class:`repro.coverage.sancov.CoverageRuntime`) can be fuzzed:
    :class:`repro.core.teapot.TeapotRuntime`, the baselines' runtimes, or a
    bare :class:`repro.runtime.emulator.Emulator`.
    """

    def __init__(self, runtime) -> None:
        self.runtime = runtime

    def execute(self, data: bytes) -> ExecutionResult:
        """Run one input."""
        return self.runtime.run(data)

    def with_engine(self, engine: str) -> "FuzzTarget":
        """The same target rebuilt on another emulator engine.

        Requires a runtime exposing ``with_engine`` (``TeapotRuntime`` and
        ``SpecFuzzRuntime`` do); both engines produce identical execution
        results, so swapping engines never changes fuzzing outcomes.
        """
        rebuild = getattr(self.runtime, "with_engine", None)
        if rebuild is None:
            raise ValueError(
                f"runtime {type(self.runtime).__name__} does not support "
                f"engine selection"
            )
        return FuzzTarget(rebuild(engine))

    def with_variants(self, variants) -> "FuzzTarget":
        """The same target rebuilt with another speculation-variant set.

        Requires a runtime exposing ``with_variants`` (``TeapotRuntime``
        and ``SpecFuzzRuntime`` do).  Unlike engines, variants *do* change
        results — they decide which mispredictions are simulated.
        """
        rebuild = getattr(self.runtime, "with_variants", None)
        if rebuild is None:
            raise ValueError(
                f"runtime {type(self.runtime).__name__} does not support "
                f"speculation-variant selection"
            )
        return FuzzTarget(rebuild(*variants))

    def coverage_signature(self):
        """Current (normal, speculative) coverage sizes, or ``(0, 0)``."""
        coverage = getattr(self.runtime, "coverage", None)
        if coverage is None:
            return (0, 0)
        return coverage.new_coverage_signature()


@dataclass
class CampaignResult:
    """Aggregated outcome of a fuzzing campaign."""

    executions: int = 0
    total_cycles: int = 0
    total_steps: int = 0
    crashes: int = 0
    hangs: int = 0
    corpus_size: int = 0
    normal_coverage: int = 0
    speculative_coverage: int = 0
    reports: ReportCollection = field(default_factory=ReportCollection)
    spec_stats: Dict[str, int] = field(default_factory=dict)

    def gadget_count(self) -> int:
        """Number of unique gadget sites found."""
        return len(self.reports)

    def count_by_category(self) -> Dict[str, int]:
        """Unique gadget counts per ``Attacker-Channel`` category."""
        return self.reports.count_by_category()

    def merge(self, other: "CampaignResult") -> None:
        """Fold another result in (campaign aggregation across chunks/workers).

        Counters sum, reports deduplicate by gadget site, and the coverage /
        corpus-size gauges take the maximum (they are absolute sizes, not
        increments).  The campaign scheduler applies the same rules when
        folding serialized worker results into its checkpointable state —
        keep :meth:`repro.campaign.scheduler.CampaignScheduler._merge_round`
        in step with any change here.
        """
        self.executions += other.executions
        self.total_cycles += other.total_cycles
        self.total_steps += other.total_steps
        self.crashes += other.crashes
        self.hangs += other.hangs
        self.corpus_size = max(self.corpus_size, other.corpus_size)
        self.normal_coverage = max(self.normal_coverage, other.normal_coverage)
        self.speculative_coverage = max(
            self.speculative_coverage, other.speculative_coverage
        )
        self.reports.merge(other.reports)
        merge_counts(self.spec_stats, other.spec_stats)

    def to_dict(self) -> Dict[str, object]:
        """Stable JSON-ready form (mirrors ``ExecutionResult``'s fields the
        way ``Corpus``/``GadgetReport`` serialize theirs), so campaign
        artifacts — e.g. :class:`repro.api.RunResult` — can embed a whole
        fuzzing outcome without bespoke glue."""
        return {
            "executions": self.executions,
            "total_cycles": self.total_cycles,
            "total_steps": self.total_steps,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "corpus_size": self.corpus_size,
            "normal_coverage": self.normal_coverage,
            "speculative_coverage": self.speculative_coverage,
            "spec_stats": dict(sorted(self.spec_stats.items())),
            "reports": self.reports.to_dicts(),
            "raw_reports": self.reports.total_raw,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "CampaignResult":
        """Rebuild a result from :meth:`to_dict` output (exact round-trip)."""
        return cls(
            executions=int(record.get("executions", 0)),
            total_cycles=int(record.get("total_cycles", 0)),
            total_steps=int(record.get("total_steps", 0)),
            crashes=int(record.get("crashes", 0)),
            hangs=int(record.get("hangs", 0)),
            corpus_size=int(record.get("corpus_size", 0)),
            normal_coverage=int(record.get("normal_coverage", 0)),
            speculative_coverage=int(record.get("speculative_coverage", 0)),
            reports=ReportCollection.from_dicts(
                record.get("reports", []),
                total_raw=int(record.get("raw_reports", 0)),
            ),
            spec_stats={str(k): int(v)
                        for k, v in record.get("spec_stats", {}).items()},
        )


class Fuzzer:
    """Deterministic coverage-guided fuzzer."""

    def __init__(
        self,
        target: FuzzTarget,
        seeds: Optional[List[bytes]] = None,
        seed: int = 0,
        max_input_size: int = 1024,
        engine: Optional[str] = None,
        variants: Optional[List[str]] = None,
    ) -> None:
        if engine is not None:
            # Rebuild the target's runtime on the requested emulator engine
            # ("fast"/"jit"/"legacy"); results are engine-invariant, only
            # the executions/second change.
            target = target.with_engine(engine)
        if variants is not None:
            # Rebuild with the requested speculation-variant set (this one
            # changes results: it decides which mispredictions exist).
            target = target.with_variants(tuple(variants))
        self.target = target
        self.corpus = Corpus(seeds or [b"\x00"])
        self.rng = random.Random(seed)
        self.mutator = Mutator(self.rng, max_size=max_input_size)
        #: total executions performed so far (the resumable loop's cursor).
        self.executions = 0

    def run_campaign(self, iterations: int) -> CampaignResult:
        """Fuzz for a fixed number of executions and aggregate the findings."""
        return self.run_chunk(iterations)

    def run_chunk(
        self, iterations: int, into: Optional[CampaignResult] = None
    ) -> CampaignResult:
        """Run ``iterations`` more executions from the current loop state.

        The fuzzer keeps its cursor (``self.executions``), RNG and corpus
        between calls, so ``run_chunk(10); run_chunk(10)`` is execution-wise
        identical to ``run_chunk(20)`` — this is what lets a campaign worker
        pause at a sync point and later resume deterministically.  Pass
        ``into`` to accumulate several chunks into one result.
        """
        result = into if into is not None else CampaignResult()
        telemetry = _active_telemetry()
        if telemetry is not None:
            registry = telemetry.registry
            execs_counter = registry.counter("fuzz.executions")
            crash_counter = registry.counter("fuzz.crashes")
            hang_counter = registry.counter("fuzz.hangs")
            corpus_gauge = registry.gauge("fuzz.corpus_size")
            heartbeat = telemetry.heartbeat
        for _ in range(iterations):
            data = self._next_input(self.executions)
            before = self.target.coverage_signature()
            exec_result = self.target.execute(data)
            after = self.target.coverage_signature()
            self.executions += 1

            result.executions += 1
            result.total_cycles += exec_result.cycles
            result.total_steps += exec_result.steps
            if exec_result.status == "crash":
                result.crashes += 1
            elif exec_result.status == "fuel":
                result.hangs += 1
            result.reports.extend(exec_result.reports)
            merge_counts(result.spec_stats, exec_result.spec_stats)

            if after != before or exec_result.status == "crash":
                self.corpus.add(data, after[0], after[1],
                                reason=self._keep_reason(before, after, exec_result))

            if telemetry is not None:
                execs_counter.inc()
                if exec_result.status == "crash":
                    crash_counter.inc()
                elif exec_result.status == "fuel":
                    hang_counter.inc()
                if len(exec_result.reports):
                    for variant, count in (
                        result.reports.count_by_variant().items()
                    ):
                        registry.gauge(f"fuzz.sites.{variant}").set(count)
                if heartbeat is not None:
                    heartbeat.tick()

        result.corpus_size = len(self.corpus)
        if telemetry is not None:
            corpus_gauge.set(result.corpus_size)
        final = self.target.coverage_signature()
        result.normal_coverage, result.speculative_coverage = final
        return result

    @staticmethod
    def _keep_reason(before, after, exec_result) -> str:
        """Which coverage axis (or crash) justified keeping the input."""
        novel_normal = after[0] > before[0]
        novel_speculative = after[1] > before[1]
        if novel_normal and novel_speculative:
            return "both"
        if novel_normal:
            return "normal"
        if novel_speculative:
            return "speculative"
        return "crash"

    # -- internals ------------------------------------------------------------
    def _next_input(self, index: int) -> bytes:
        # Replay the seed corpus first so seeds always contribute coverage,
        # then mutate corpus entries round-robin.
        if index < len(self.corpus.entries):
            return self.corpus.entries[index].data
        entry = self.corpus.select(self.rng.randrange(len(self.corpus)))
        return self.mutator.mutate(entry.data)
