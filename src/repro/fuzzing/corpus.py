"""Fuzzing corpus: interesting inputs kept for further mutation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Why an entry was kept: seeded, novel normal coverage, novel speculative
#: coverage, both axes at once, a crashing input, or merged from a peer
#: corpus (campaign corpus sync).
KEEP_REASONS = ("seed", "normal", "speculative", "both", "crash", "merge")


@dataclass
class CorpusEntry:
    """One saved input and the coverage it achieved when first executed."""

    data: bytes
    normal_coverage: int = 0
    speculative_coverage: int = 0
    executions: int = 0
    reason: str = "seed"

    @property
    def coverage_signature(self) -> Tuple[int, int]:
        """(normal, speculative) coverage sizes when the entry was added."""
        return (self.normal_coverage, self.speculative_coverage)

    def to_dict(self) -> Dict[str, object]:
        """Serialize for campaign checkpoints (data as hex)."""
        return {
            "data": self.data.hex(),
            "normal_coverage": self.normal_coverage,
            "speculative_coverage": self.speculative_coverage,
            "executions": self.executions,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "CorpusEntry":
        """Rebuild an entry from :meth:`to_dict` output."""
        return cls(
            data=bytes.fromhex(record["data"]),
            normal_coverage=int(record.get("normal_coverage", 0)),
            speculative_coverage=int(record.get("speculative_coverage", 0)),
            executions=int(record.get("executions", 0)),
            reason=str(record.get("reason", "seed")),
        )


class Corpus:
    """A deduplicated pool of interesting inputs."""

    def __init__(self, seeds: Optional[List[bytes]] = None) -> None:
        self.entries: List[CorpusEntry] = []
        self._seen = set()
        for seed in seeds or []:
            self.add(seed, 0, 0)

    def __len__(self) -> int:
        return len(self.entries)

    def add(
        self,
        data: bytes,
        normal_coverage: int,
        speculative_coverage: int,
        reason: str = "seed",
    ) -> bool:
        """Add an input if it is not already present; returns ``True`` if added.

        ``reason`` records which coverage axis justified keeping the entry
        (one of :data:`KEEP_REASONS`) so campaign-level corpus analysis can
        tell speculative-coverage finds from normal-coverage finds.
        """
        if data in self._seen:
            return False
        self._seen.add(data)
        self.entries.append(
            CorpusEntry(data, normal_coverage, speculative_coverage, reason=reason)
        )
        return True

    def merge(self, other: "Corpus") -> int:
        """Fold another corpus's entries in; returns how many were new.

        Entries keep their recorded coverage but are tagged ``merge`` so a
        sync'd entry is distinguishable from one this corpus discovered.
        """
        added = 0
        for entry in other.entries:
            if self.add(entry.data, entry.normal_coverage,
                        entry.speculative_coverage, reason="merge"):
                added += 1
        return added

    def to_bytes_list(self) -> List[bytes]:
        """All stored inputs in insertion order (round-trips via ``Corpus()``)."""
        return [entry.data for entry in self.entries]

    def shards(self, count: int) -> List[List[bytes]]:
        """Split the inputs round-robin into ``count`` shards.

        Every shard is guaranteed at least one input (the first entry is
        replicated into shards that would otherwise come up empty), so each
        campaign worker always has something to mutate.
        """
        if count < 1:
            raise ValueError("shard count must be >= 1")
        data = self.to_bytes_list()
        shards: List[List[bytes]] = [[] for _ in range(count)]
        for index, item in enumerate(data):
            shards[index % count].append(item)
        if data:
            for shard in shards:
                if not shard:
                    shard.append(data[0])
        return shards

    def to_dicts(self) -> List[Dict[str, object]]:
        """Serialize every entry (campaign checkpoint format)."""
        return [entry.to_dict() for entry in self.entries]

    @classmethod
    def from_dicts(cls, records: List[Dict[str, object]]) -> "Corpus":
        """Rebuild a corpus from :meth:`to_dicts` output."""
        corpus = cls()
        for record in records:
            entry = CorpusEntry.from_dict(record)
            if entry.data not in corpus._seen:
                corpus._seen.add(entry.data)
                corpus.entries.append(entry)
        return corpus

    def select(self, index: int) -> CorpusEntry:
        """Pick an entry for mutation (round-robin by index)."""
        if not self.entries:
            raise IndexError("corpus is empty")
        entry = self.entries[index % len(self.entries)]
        entry.executions += 1
        return entry

    def total_bytes(self) -> int:
        """Total size of all stored inputs."""
        return sum(len(e.data) for e in self.entries)
