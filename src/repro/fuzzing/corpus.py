"""Fuzzing corpus: interesting inputs kept for further mutation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class CorpusEntry:
    """One saved input and the coverage it achieved when first executed."""

    data: bytes
    normal_coverage: int = 0
    speculative_coverage: int = 0
    executions: int = 0

    @property
    def coverage_signature(self) -> Tuple[int, int]:
        """(normal, speculative) coverage sizes when the entry was added."""
        return (self.normal_coverage, self.speculative_coverage)


class Corpus:
    """A deduplicated pool of interesting inputs."""

    def __init__(self, seeds: Optional[List[bytes]] = None) -> None:
        self.entries: List[CorpusEntry] = []
        self._seen = set()
        for seed in seeds or []:
            self.add(seed, 0, 0)

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, data: bytes, normal_coverage: int, speculative_coverage: int) -> bool:
        """Add an input if it is not already present; returns ``True`` if added."""
        if data in self._seen:
            return False
        self._seen.add(data)
        self.entries.append(
            CorpusEntry(data, normal_coverage, speculative_coverage)
        )
        return True

    def select(self, index: int) -> CorpusEntry:
        """Pick an entry for mutation (round-robin by index)."""
        if not self.entries:
            raise IndexError("corpus is empty")
        entry = self.entries[index % len(self.entries)]
        entry.executions += 1
        return entry

    def total_bytes(self) -> int:
        """Total size of all stored inputs."""
        return sum(len(e.data) for e in self.entries)
