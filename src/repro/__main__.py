"""``python -m repro`` — shorthand for the ``repro`` CLI."""

import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())
