"""``repro`` (``python -m repro.api``): the single CLI over the facade.

Subcommands::

    repro fuzz --target jsmn --iterations 400 --json run.json
    repro campaign --targets all --workers 4 --iterations 200
    repro harden --target gadgets --strategy mask --iterations 400
    repro report --in run.json
    repro bench --target jsmn --input-size 200
    repro bench diff baseline/ candidate/       # exits 1 on regression
    repro bench history v1/ v2/ v3/
    repro targets --json
    repro stats trace.jsonl --html report.html --flamegraph stacks.txt
    repro monitor --runs-root runs              # serve a recorded run
    repro top http://127.0.0.1:8642             # live service dashboard
    repro runs list

``fuzz``, ``report``, ``bench`` and ``targets`` are implemented directly
over :mod:`repro.api`'s Pipeline builder and :class:`~repro.api.result.
RunResult` artifact; ``campaign`` and ``harden`` forward to the
subsystem CLIs (whose standalone ``repro-campaign``/``repro-harden``
scripts are now deprecated shims of these subcommands).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

import repro.api as api
from repro._version import __version__

#: Subcommands forwarded verbatim to the subsystem CLIs.
_FORWARDED = {
    "campaign": ("repro.campaign.cli",
                 "run a multi-target fuzzing campaign matrix"),
    "harden": ("repro.hardening.cli",
               "detect, patch, and verify one target"),
}

#: Fuzzing-service subcommands, dispatched through repro.service.cli
#: (which keeps submit/status import-light urllib clients).
_SERVICE_COMMANDS = {
    "serve": "run the fuzzing service (durable queue + workers + HTTP API)",
    "submit": "submit a campaign to a running service",
    "status": "query a running service's campaigns",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spectre-gadget detection, campaigns, and hardening "
                    "over one pipeline API (see docs/api.md).",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", metavar="command")

    fuzz = sub.add_parser(
        "fuzz", help="fuzz one target and write a RunResult artifact")
    fuzz.add_argument("--target", required=True,
                      help=f"target ({', '.join(api.target_names())})")
    fuzz.add_argument("--tool", default="teapot",
                      help="detector tool (default: teapot)")
    fuzz.add_argument("--variant", default="vanilla",
                      help="binary variant (default: vanilla)")
    fuzz.add_argument("--engine", default="fast",
                      help=f"emulator engine ({', '.join(api.engine_names())})")
    fuzz.add_argument("--variants", default="pht",
                      help="comma-separated speculation variants to simulate "
                           f"({', '.join(api.model_names())}; default: pht)")
    fuzz.add_argument("--iterations", type=int, default=400)
    fuzz.add_argument("--rounds", type=int, default=1)
    fuzz.add_argument("--shards", type=int, default=1)
    fuzz.add_argument("--workers", type=int, default=1)
    fuzz.add_argument("--scheduler", default="pool",
                      help="campaign scheduler plugin "
                           f"({', '.join(api.scheduler_names())}; "
                           "default: pool); results are identical across "
                           "schedulers")
    fuzz.add_argument("--seed", type=int, default=1234)
    fuzz.add_argument("--max-input-size", type=int, default=1024)
    fuzz.add_argument("--checkpoint", metavar="PATH", default=None)
    fuzz.add_argument("--resume", action="store_true")
    fuzz.add_argument("--json", metavar="PATH", default=None,
                      help="write the RunResult artifact ('-' for stdout)")
    fuzz.add_argument("--quiet", action="store_true")
    fuzz.add_argument("--progress", action="store_true",
                      help="print a live progress heartbeat to stderr")
    fuzz.add_argument("--progress-interval", type=float, default=5.0,
                      metavar="SECONDS",
                      help="minimum seconds between heartbeats (default: 5)")
    fuzz.add_argument("--trace", metavar="PATH", default=None,
                      help="write a structured JSONL telemetry trace "
                           "(inspect with `repro stats PATH`)")
    fuzz.add_argument("--profile-engine", action="store_true",
                      help="record per-opcode/per-address emulator hot "
                           "spots into the telemetry snapshot")

    for name, (_, help_text) in _FORWARDED.items():
        fwd = sub.add_parser(name, help=help_text, add_help=False)
        fwd.add_argument("rest", nargs=argparse.REMAINDER)

    for name, help_text in _SERVICE_COMMANDS.items():
        fwd = sub.add_parser(name, help=help_text, add_help=False)
        fwd.add_argument("rest", nargs=argparse.REMAINDER)

    report = sub.add_parser(
        "report", help="inspect a RunResult artifact written by --json")
    report.add_argument("--in", dest="path", required=True, metavar="PATH",
                        help="RunResult JSON file")
    report.add_argument("--json", action="store_true",
                        help="re-emit the validated artifact as JSON")
    report.add_argument("--reports", action="store_true",
                        help="also list the unique gadget reports")

    bench = sub.add_parser(
        "bench", help="native-vs-instrumented cycle comparison (Figure 7 "
                      "methodology)")
    bench.add_argument("--target", required=True)
    bench.add_argument("--variant", default="vanilla")
    bench.add_argument("--engine", default="fast")
    bench.add_argument("--input-size", type=int, default=200)
    bench.add_argument("--tools", default=",".join(api.BENCH_TOOLS),
                       help="comma-separated tools to measure "
                            f"(default: {','.join(api.BENCH_TOOLS)})")
    bench.add_argument("--json", metavar="PATH", default=None,
                       help="write the RunResult artifact ('-' for stdout)")
    bench.add_argument("--quiet", action="store_true")

    targets = sub.add_parser(
        "targets", help="list registered targets and capability flags")
    targets.add_argument("--json", action="store_true",
                         help="machine-readable listing (runnable/"
                              "injectable flags)")

    stats = sub.add_parser(
        "stats", help="summarize a telemetry trace written by --trace")
    stats.add_argument("trace", metavar="TRACE",
                       help="JSONL trace file (from `repro fuzz --trace` "
                            "or `repro campaign --trace`)")
    stats.add_argument("--json", action="store_true",
                       help="emit the aggregate as JSON instead of a table")
    stats.add_argument("--html", metavar="PATH", default=None,
                       help="write a self-contained HTML report (span tree, "
                            "critical path, per-path percentiles, hot spots)")
    stats.add_argument("--flamegraph", metavar="PATH", default=None,
                       help="write collapsed-stack span self-times "
                            "(flamegraph.pl / speedscope input)")
    stats.add_argument("--result", metavar="PATH", default=None,
                       help="RunResult JSON whose engine profile feeds the "
                            "HTML hot-spot tables")

    monitor = sub.add_parser(
        "monitor", help="serve /metrics + /status for a recorded run "
                        "directory (live while the campaign runs)")
    monitor.add_argument("--runs-root", default="runs", metavar="ROOT",
                         help="run registry root (default: runs/)")
    monitor.add_argument("--run", default=None, metavar="RUN_ID",
                         help="run id to serve (default: the newest run)")
    monitor.add_argument("--serve", metavar="[HOST:]PORT", default="",
                         help="bind address (default 127.0.0.1:9753; "
                              "port 0 = OS-assigned)")
    monitor.add_argument("--once", action="store_true",
                         help="print the Prometheus exposition once to "
                              "stdout and exit (no server)")

    top = sub.add_parser(
        "top", help="live dashboard over a running service URL or a "
                    "run directory")
    top.add_argument("target", nargs="?", default="http://127.0.0.1:8642",
                     metavar="URL|RUN_DIR",
                     help="service base URL or run-directory path "
                          "(default: http://127.0.0.1:8642)")
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="refresh interval (default: 2)")
    top.add_argument("--once", action="store_true",
                     help="render one frame to stdout and exit (CI mode)")
    top.add_argument("--json", action="store_true",
                     help="print one raw sample as JSON and exit")

    runs = sub.add_parser(
        "runs", help="list/inspect/prune the durable run registry")
    runs_sub = runs.add_subparsers(dest="runs_command", metavar="action")
    runs_list = runs_sub.add_parser("list", help="list recorded runs")
    runs_list.add_argument("--root", default="runs")
    runs_list.add_argument("--json", action="store_true")
    runs_show = runs_sub.add_parser("show", help="show one run's manifest "
                                                 "and latest metrics")
    runs_show.add_argument("run_id", metavar="RUN_ID")
    runs_show.add_argument("--root", default="runs")
    runs_show.add_argument("--json", action="store_true")
    runs_gc = runs_sub.add_parser("gc", help="delete all but the newest "
                                             "finished runs")
    runs_gc.add_argument("--root", default="runs")
    runs_gc.add_argument("--keep", type=int, default=10)
    runs_gc.add_argument("--dry-run", action="store_true")
    return parser


def _bench_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench diff",
        description="Compare two BENCH_*.json snapshots (files or "
                    "directories); exits 1 when a metric regressed "
                    "beyond the threshold.")
    parser.add_argument("old", metavar="OLD",
                        help="baseline BENCH_*.json file or directory")
    parser.add_argument("new", metavar="NEW",
                        help="candidate BENCH_*.json file or directory")
    parser.add_argument("--threshold", type=float, default=None,
                        metavar="FRACTION",
                        help="relative change that flags a metric "
                             "(default: 0.05 = 5%%)")
    parser.add_argument("--show-ok", action="store_true",
                        help="also list metrics within the threshold")
    parser.add_argument("--json", action="store_true",
                        help="emit the full diff as JSON")
    return parser


def _bench_history_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench history",
        description="Line several BENCH_*.json snapshots up "
                    "chronologically, one column per snapshot.")
    parser.add_argument("snapshots", metavar="SNAPSHOT", nargs="+",
                        help="BENCH_*.json files or directories, oldest "
                             "first")
    parser.add_argument("--json", action="store_true",
                        help="emit rows as JSON")
    return parser


def _emit_result(run: "api.RunResult", json_arg: Optional[str],
                 quiet: bool) -> None:
    """Print the run summary and write the artifact where asked.

    With ``--json -`` the artifact owns stdout and the human summary
    moves to stderr, so piping stays machine-clean.
    """
    if json_arg and json_arg != "-":
        run.save(json_arg)
    summary_stream = sys.stderr if json_arg == "-" else sys.stdout
    if not quiet or json_arg != "-":
        print(run.format_summary(), file=summary_stream)
    if json_arg == "-":
        print(run.to_json())


def _cmd_fuzz(args: argparse.Namespace) -> int:
    progress = None if args.quiet else (
        lambda message: print(f"[repro] {message}", file=sys.stderr))
    spec_variants = tuple(
        item.strip() for item in args.variants.split(",") if item.strip())
    try:
        run = (api.pipeline(
                   target=args.target, variant=args.variant, tool=args.tool,
                   engine=args.engine, seed=args.seed, workers=args.workers,
                   max_input_size=args.max_input_size, progress=progress)
               .variants(*spec_variants)
               .fuzz(iterations=args.iterations, rounds=args.rounds,
                     shards=args.shards, checkpoint=args.checkpoint,
                     resume=args.resume, scheduler=args.scheduler))
        if args.progress or args.trace or args.profile_engine:
            run = run.telemetry(trace=args.trace, progress=args.progress,
                                interval=args.progress_interval,
                                profile_engine=args.profile_engine)
        run = run.report()
    except (api.PipelineError, api.UnknownPluginError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _emit_result(run, args.json, args.quiet)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        run = api.RunResult.load(args.path)
    except (OSError, ValueError) as error:
        print(f"error: cannot load {args.path}: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(run.to_json())
        return 0
    print(run.format_summary())
    if args.reports:
        for report in run.gadget_reports():
            print(f"  {report.category}  pc={report.pc:#x}  "
                  f"depth={report.depth}  [{report.tool}]")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    progress = None if args.quiet else (
        lambda message: print(f"[repro] {message}", file=sys.stderr))
    tools = tuple(t.strip() for t in args.tools.split(",") if t.strip())
    try:
        run = (api.pipeline(target=args.target, variant=args.variant,
                            engine=args.engine, progress=progress)
               .bench(input_size=args.input_size, tools=tools)
               .report())
    except (api.PipelineError, api.UnknownPluginError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _emit_result(run, args.json, args.quiet)
    if args.json != "-":
        payload = run.stage("bench").payload
        for tool, factor in sorted(payload["normalized"].items()):
            print(f"  {tool}: {factor:.1f}x native")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.telemetry import aggregate_trace, format_trace_stats, read_trace
    from repro.telemetry.tracing import TraceError

    try:
        records = read_trace(args.trace)
    except (OSError, TraceError, ValueError) as error:
        print(f"error: cannot read {args.trace}: {error}", file=sys.stderr)
        return 2
    aggregate = aggregate_trace(records)
    wrote_artifact = False
    if args.html:
        from repro.telemetry.report import render_html_report

        profile = None
        if args.result:
            try:
                telemetry = api.RunResult.load(args.result).telemetry or {}
                profile = telemetry.get("profile")
            except (OSError, ValueError) as error:
                print(f"error: cannot load {args.result}: {error}",
                      file=sys.stderr)
                return 2
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_html_report(aggregate, profile=profile))
        print(f"wrote HTML report to {args.html}", file=sys.stderr)
        wrote_artifact = True
    if args.flamegraph:
        from repro.telemetry.report import render_flamegraph

        with open(args.flamegraph, "w", encoding="utf-8") as handle:
            handle.write(render_flamegraph(aggregate))
        print(f"wrote collapsed stacks to {args.flamegraph}",
              file=sys.stderr)
        wrote_artifact = True
    if args.json:
        print(json.dumps(aggregate, indent=1, sort_keys=True, default=str))
        return 0
    if not wrote_artifact:
        print(format_trace_stats(aggregate))
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.telemetry.export import (
        MetricsExporter,
        parse_address,
        render_prometheus,
    )
    from repro.telemetry.runs import RunRegistry

    registry = RunRegistry(args.runs_root)
    try:
        if args.run:
            run = registry.get(args.run)
        else:
            runs = registry.runs()
            if not runs:
                print(f"error: no runs under {args.runs_root} "
                      "(start one with `repro campaign --run-dir`)",
                      file=sys.stderr)
                return 2
            run = runs[0]
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.once:
        sys.stdout.write(render_prometheus(run))
        return 0
    host, port = parse_address(args.serve)
    exporter = MetricsExporter(run, registry=registry, host=host, port=port)
    print(f"[monitor] serving run {run.run_id} on {exporter.url} "
          "(/metrics, /status, /runs; Ctrl-C to stop)", file=sys.stderr)
    exporter.serve_forever()
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.telemetry import top as telemetry_top

    if args.json:
        try:
            record = telemetry_top.sample(args.target)
        except telemetry_top.TopError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(json.dumps(record, indent=1, sort_keys=True))
        return 0
    return telemetry_top.run_top(args.target, interval=args.interval,
                                 once=args.once)


def _run_trace_stats(run) -> Optional[dict]:
    """Aggregate a run directory's ``trace.jsonl`` (None when absent)."""
    from repro.telemetry import aggregate_trace, read_trace
    from repro.telemetry.tracing import TraceError

    try:
        records = read_trace(run.trace_path)
    except (OSError, TraceError, ValueError):
        return None
    return aggregate_trace(records)


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.telemetry.runs import (
        RunRegistry,
        RunSchemaError,
        format_runs_table,
    )

    command = args.runs_command or "list"
    registry = RunRegistry(getattr(args, "root", "runs"))
    if command == "list":
        manifests = registry.list_manifests()
        if getattr(args, "json", False):
            print(json.dumps(manifests, indent=1, sort_keys=True))
        else:
            print(format_runs_table(manifests))
        return 0
    if command == "show":
        try:
            run = registry.get(args.run_id)
            manifest = run.manifest()
        except (KeyError, RunSchemaError) as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        aggregate = _run_trace_stats(run)
        record = {"manifest": manifest,
                  "live_counts": run.live_counts()}
        if aggregate is not None:
            record["trace"] = aggregate
        if args.json:
            print(json.dumps(record, indent=1, sort_keys=True, default=str))
            return 0
        print(f"run {manifest.get('run_id')} [{manifest.get('status')}] — "
              f"{manifest.get('command')} "
              f"(created {manifest.get('created_at')})")
        for key in ("target", "engine", "variants", "config_digest",
                    "finished_at"):
            if manifest.get(key):
                print(f"  {key}: {manifest[key]}")
        counts = run.live_counts()
        if counts:
            print("  live counts:")
            for name, value in counts.items():
                print(f"    {name} = {value}")
        if aggregate is not None:
            from repro.telemetry.report import critical_path

            span_paths = aggregate.get("span_paths") or {}
            top_paths = sorted(
                span_paths.items(),
                key=lambda item: -float(item[1].get("total_s", 0.0)))[:8]
            if top_paths:
                print("  trace (top span paths by total time):")
                for path, stats in top_paths:
                    print(f"    {path}: {stats.get('count', 0)}x "
                          f"total {stats.get('total_s', 0.0)}s "
                          f"p50 {stats.get('p50_s', 0.0)}s "
                          f"p90 {stats.get('p90_s', 0.0)}s")
            chain = critical_path(list(aggregate.get("spans") or []))
            if chain:
                print("  critical path: "
                      + " > ".join(
                          f"{span.get('name')} "
                          f"({float(span.get('elapsed_s') or 0.0):.3f}s)"
                          for span in chain))
        return 0
    if command == "gc":
        removed = registry.gc(keep=args.keep, dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        print(f"{verb} {len(removed)} run(s)"
              + (": " + ", ".join(removed) if removed else ""))
        return 0
    print(f"error: unknown runs action {command!r}", file=sys.stderr)
    return 2


def _cmd_bench_diff(argv: Sequence[str]) -> int:
    from repro.telemetry import benchdiff

    args = _bench_diff_parser().parse_args(argv)
    threshold = (args.threshold if args.threshold is not None
                 else benchdiff.DEFAULT_THRESHOLD)
    try:
        old = benchdiff.load_bench_snapshot(args.old)
        new = benchdiff.load_bench_snapshot(args.new)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    entries = benchdiff.diff_bench(old, new, threshold=threshold)
    flagged = benchdiff.regressions(entries)
    if args.json:
        print(json.dumps({"threshold": threshold, "entries": entries,
                          "regressions": len(flagged)},
                         indent=1, sort_keys=True))
    else:
        print(benchdiff.format_diff_table(entries, show_ok=args.show_ok))
    return 1 if flagged else 0


def _cmd_bench_history(argv: Sequence[str]) -> int:
    from repro.telemetry import benchdiff

    args = _bench_history_parser().parse_args(argv)
    snapshots = []
    for path in args.snapshots:
        try:
            snapshots.append(benchdiff.load_bench_snapshot(path))
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    headers, rows = benchdiff.bench_history(snapshots)
    if args.json:
        print(json.dumps({"headers": headers, "rows": rows},
                         indent=1, sort_keys=True))
    else:
        print(benchdiff.format_history_table(headers, rows))
    return 0


def _cmd_targets(args: argparse.Namespace) -> int:
    listing = api.target_listing()
    if args.json:
        print(json.dumps(listing, indent=1, sort_keys=True))
        return 0
    print("registered targets:")
    for record in listing:
        flags = ["runnable"]
        if record["injectable"]:
            flags.append(f"injectable ({record['attack_points']} attack "
                         f"points)")
        description = f"  — {record['description']}" if record["description"] else ""
        print(f"  {record['name']:<10} [{', '.join(flags)}]{description}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # The campaign/harden subcommands forward verbatim (including --help)
    # to the subsystem CLIs, re-branded with the `repro <sub>` prog.
    if argv and argv[0] in _FORWARDED:
        module_name, _ = _FORWARDED[argv[0]]
        module = __import__(module_name, fromlist=["main"])
        return module.main(argv[1:], prog=f"repro {argv[0]}")
    if argv and argv[0] in _SERVICE_COMMANDS:
        from repro.service import cli as service_cli

        return service_cli.main(argv, prog="repro")
    # `bench diff`/`bench history` compare artifacts instead of running a
    # measurement; they take positional paths, so route before argparse
    # sees the measurement flags.
    if len(argv) >= 2 and argv[0] == "bench" and argv[1] == "diff":
        return _cmd_bench_diff(argv[2:])
    if len(argv) >= 2 and argv[0] == "bench" and argv[1] == "history":
        return _cmd_bench_history(argv[2:])

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    handler = {
        "fuzz": _cmd_fuzz,
        "report": _cmd_report,
        "bench": _cmd_bench,
        "targets": _cmd_targets,
        "stats": _cmd_stats,
        "monitor": _cmd_monitor,
        "top": _cmd_top,
        "runs": _cmd_runs,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # The reader went away (`... | head`); any --json artifact is
        # already on disk, so exit quietly like the campaign CLI does.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
