"""The unified run artifact: one schema for every pipeline outcome.

A :class:`RunResult` is what every :class:`repro.api.Pipeline` run
returns and what the ``repro`` CLI writes with ``--json``: a versioned,
JSON-round-trippable record whose stages embed the existing artifact
formats unchanged — a fuzz stage carries a
:meth:`repro.fuzzing.fuzzer.CampaignResult.to_dict` record plus the
campaign group row, a harden/refuzz pair carries the fields of
:meth:`repro.hardening.pipeline.HardeningResult.to_dict`, a campaign
stage carries a full :meth:`repro.campaign.summary.CampaignSummary.
to_dict`, and a bench stage carries a ``BENCH_*.json``-style metrics
record.  Consumers check ``schema_version`` and ``kind`` before trusting
a file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._version import __version__
from repro.sanitizers.reports import GadgetReport

#: Bump on any backwards-incompatible change to the artifact layout.
#: (Additive fields — ``version``, ``telemetry`` — do not bump it.)
SCHEMA_VERSION = 1

#: Artifact type tag written into (and required from) every JSON file.
RESULT_KIND = "repro.api/run-result"


class ResultSchemaError(ValueError):
    """Raised when a loaded artifact is not a compatible RunResult."""


@dataclass
class StageRecord:
    """One executed pipeline stage: its kind, label and JSON payload."""

    kind: str
    label: str
    payload: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "label": self.label,
                "payload": self.payload}

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "StageRecord":
        kind = record.get("kind")
        if not isinstance(kind, str) or not kind:
            raise ResultSchemaError(
                f"stage record without a 'kind' tag: {record!r}")
        return cls(kind=kind, label=str(record.get("label", "")),
                   payload=dict(record.get("payload", {})))


@dataclass
class RunResult:
    """Everything one pipeline run produced, stage by stage.

    ``context`` records the pipeline's identity (target, variant, tool,
    engine, seed); ``stages`` the executed stages in order.  Runtime-only
    companions (the live :class:`~repro.campaign.summary.CampaignSummary`,
    :class:`~repro.hardening.pipeline.HardeningResult` objects, report
    lists) ride along in non-serialized attributes set by the session.
    """

    context: Dict[str, object] = field(default_factory=dict)
    stages: List[StageRecord] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION
    #: library version that produced the artifact.
    version: str = __version__
    #: telemetry snapshot (:meth:`repro.telemetry.Telemetry.snapshot`) of
    #: the run, when the pipeline ran with telemetry attached.
    telemetry: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        #: live CampaignSummary of the last fuzz/campaign stage (not
        #: serialized; ``None`` after ``from_dict``).
        self.summary = None
        #: live HardeningResult of the last harden+refuzz pair (not
        #: serialized; ``None`` after ``from_dict``).
        self.hardening_result = None

    # -- stage access -------------------------------------------------------
    def add_stage(self, kind: str, label: str,
                  payload: Dict[str, object]) -> StageRecord:
        record = StageRecord(kind=kind, label=label, payload=payload)
        self.stages.append(record)
        return record

    def stage(self, kind: str) -> StageRecord:
        """The last executed stage of one kind (raises ``KeyError``)."""
        for record in reversed(self.stages):
            if record.kind == kind:
                return record
        raise KeyError(
            f"no {kind!r} stage in this run; executed: "
            f"{', '.join(s.kind for s in self.stages) or '(none)'}")

    def has_stage(self, kind: str) -> bool:
        return any(record.kind == kind for record in self.stages)

    def gadget_reports(self) -> List[GadgetReport]:
        """The unique gadget reports of the last report-bearing stage."""
        for record in reversed(self.stages):
            if "reports" in record.payload:
                return [GadgetReport.from_dict(r)
                        for r in record.payload["reports"]]
        return []

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Stable JSON-ready form (the on-disk artifact layout)."""
        record: Dict[str, object] = {
            "kind": RESULT_KIND,
            "schema_version": self.schema_version,
            "version": self.version,
            "context": dict(self.context),
            "stages": [stage.to_dict() for stage in self.stages],
        }
        if self.telemetry is not None:
            record["telemetry"] = self.telemetry
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output.

        Raises:
            ResultSchemaError: wrong ``kind`` tag or a ``schema_version``
                newer than this library understands.
        """
        if record.get("kind") != RESULT_KIND:
            raise ResultSchemaError(
                f"not a {RESULT_KIND} artifact (kind={record.get('kind')!r})")
        version = int(record.get("schema_version", 0))
        if version < 1 or version > SCHEMA_VERSION:
            raise ResultSchemaError(
                f"unsupported schema_version {version} "
                f"(this library understands 1..{SCHEMA_VERSION})")
        result = cls(
            context=dict(record.get("context", {})),
            stages=[StageRecord.from_dict(s)
                    for s in record.get("stages", [])],
            schema_version=version,
            version=str(record.get("version", "")),
        )
        telemetry = record.get("telemetry")
        if telemetry is not None:
            result.telemetry = dict(telemetry)
        return result

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        """Write the artifact as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "RunResult":
        """Read an artifact written by :meth:`save` (or ``--json``)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # -- rendering ----------------------------------------------------------
    def format_summary(self) -> str:
        """A short human-readable account of the whole run."""
        head = " ".join(
            f"{key}={self.context[key]}"
            for key in ("target", "variant", "tool", "engine", "seed")
            if self.context.get(key) is not None
        )
        lines = [f"pipeline run: {head or '(campaign matrix)'}"]
        for record in self.stages:
            payload = record.payload
            if record.kind == "fuzz":
                lines.append(
                    f"  fuzz: {payload.get('executions', 0)} executions, "
                    f"{payload.get('unique_gadgets', 0)} unique gadget "
                    f"sites ({payload.get('raw_reports', 0)} raw)")
            elif record.kind == "reports":
                lines.append(f"  reports: {payload.get('count', 0)} "
                             f"pre-recorded gadget reports")
            elif record.kind == "harden":
                lines.append(
                    f"  harden[{payload.get('strategy')}]: "
                    f"{payload.get('sites', 0)} sites patched, overhead "
                    f"{payload.get('overhead', 1.0):.3f}x")
            elif record.kind == "refuzz":
                lines.append(
                    f"  refuzz: {len(payload.get('eliminated', []))} "
                    f"eliminated, {len(payload.get('residual', []))} "
                    f"residual, {len(payload.get('new_sites', []))} new")
            elif record.kind == "campaign":
                summary = payload.get("summary", {})
                lines.append(
                    f"  campaign: {len(summary.get('groups', []))} groups, "
                    f"{summary.get('rounds_completed', 0)} rounds")
            elif record.kind == "bench":
                tools = ", ".join(
                    f"{tool}={cycles}" for tool, cycles in
                    sorted(payload.get("tool_cycles", {}).items()))
                lines.append(
                    f"  bench: native={payload.get('native_cycles', 0)} "
                    f"cycles{'; ' + tools if tools else ''}")
            else:
                lines.append(f"  {record.kind}: {record.label}")
        if self.telemetry:
            metrics = self.telemetry.get("metrics", {})
            lines.append(f"  telemetry: {len(metrics)} metrics recorded")
        return "\n".join(lines)
