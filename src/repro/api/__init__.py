"""``repro.api`` — the one public surface of the Teapot reproduction.

Three layers, one import::

    import repro.api as api

* **Pipeline builder** — :func:`api.pipeline` composes fuzzing,
  campaigns, hardening and benchmarking into one typed chain whose
  terminal :meth:`~repro.api.pipeline.Pipeline.report` call returns a
  versioned, JSON-round-trippable :class:`~repro.api.result.RunResult`::

      run = api.pipeline(target="jsmn").engine("fast") \\
               .fuzz(400).harden("mask").refuzz().report()

* **Plugin registries** — targets, emulator engines, hardening
  strategies and campaign schedulers are named plugins; third-party code
  extends the system with :func:`register_target`,
  :func:`register_engine`, :func:`register_pass` and
  :func:`register_scheduler` and the new names work everywhere a
  built-in would (builder stages, the CLI, campaign specs).

* **CLI** — the ``repro`` console script (``python -m repro.api``)
  drives everything: ``repro fuzz | campaign | harden | report | bench |
  targets``.  The older ``repro-campaign``/``repro-harden`` scripts
  remain as deprecated shims.

The tests in ``tests/api/test_public_surface.py`` pin ``__all__``; grow
it deliberately.
"""

from typing import Dict, List

from repro.api.pipeline import (
    BENCH_TOOLS,
    Pipeline,
    PipelineError,
    Session,
    pipeline,
)
from repro.api.result import (
    RESULT_KIND,
    SCHEMA_VERSION,
    ResultSchemaError,
    RunResult,
    StageRecord,
)
from repro.campaign.spec import CampaignSpec
from repro.hardening.pipeline import HardeningResult
from repro.plugins import (
    ENGINE_REGISTRY,
    MODEL_REGISTRY,
    PASS_REGISTRY,
    SCHEDULER_REGISTRY,
    DuplicatePluginError,
    PluginError,
    PluginRegistry,
    UnknownPluginError,
    engine_names,
    model_names,
    register_engine,
    register_model,
    register_pass,
    register_scheduler,
    register_target,
    scheduler_names,
    strategy_names,
    target_names,
    target_registry,
)
from repro.sanitizers.reports import GadgetReport
from repro.specmodels import SpeculationModel
from repro.targets.base import AttackPoint, TargetProgram
from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    TraceWriter,
    aggregate_trace,
    read_trace,
)
from repro.telemetry.benchdiff import diff_bench
from repro.telemetry.export import render_prometheus, serve_metrics
from repro.telemetry.runs import RunDirectory, RunRegistry


def target_listing() -> List[Dict[str, object]]:
    """Machine-readable listing of every registered target.

    One record per target with its capability flags — ``runnable``
    (campaigns can fuzz it), ``injectable`` (supports the Table-3
    ``injected`` variant) and ``variants`` (the speculation variants with
    known planted gadgets) — which is what ``repro targets --json``
    prints.
    """
    registry = target_registry()
    records: List[Dict[str, object]] = []
    for name in registry.names():
        target = registry.get(name)
        records.append({
            "name": name,
            "runnable": True,
            "injectable": bool(target.attack_points),
            "attack_points": len(target.attack_points),
            "seeds": len(target.seeds),
            "variants": sorted(target.variants),
            "description": target.description,
        })
    return records


__all__ = [
    # pipeline builder
    "BENCH_TOOLS",
    "Pipeline",
    "PipelineError",
    "Session",
    "pipeline",
    # run artifact
    "RESULT_KIND",
    "SCHEMA_VERSION",
    "ResultSchemaError",
    "RunResult",
    "StageRecord",
    # plugin registries
    "ENGINE_REGISTRY",
    "MODEL_REGISTRY",
    "PASS_REGISTRY",
    "SCHEDULER_REGISTRY",
    "DuplicatePluginError",
    "PluginError",
    "PluginRegistry",
    "UnknownPluginError",
    "engine_names",
    "model_names",
    "register_engine",
    "register_model",
    "register_pass",
    "register_scheduler",
    "register_target",
    "scheduler_names",
    "strategy_names",
    "target_names",
    "target_registry",
    "target_listing",
    # building blocks a plugin author needs
    "AttackPoint",
    "CampaignSpec",
    "GadgetReport",
    "HardeningResult",
    "SpeculationModel",
    "TargetProgram",
    # telemetry / observability
    "MetricsRegistry",
    "Telemetry",
    "TraceWriter",
    "aggregate_trace",
    "read_trace",
    # campaign observatory
    "RunDirectory",
    "RunRegistry",
    "diff_bench",
    "render_prometheus",
    "serve_metrics",
]
