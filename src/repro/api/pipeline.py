"""The Pipeline builder: one composable surface over fuzz→harden→report.

:func:`pipeline` starts a typed builder; each stage method appends one
step and returns the builder, and :meth:`Pipeline.report` (or
:meth:`Pipeline.run`) executes the whole chain and returns a
:class:`~repro.api.result.RunResult`::

    import repro.api as api

    run = (api.pipeline(target="jsmn")
           .engine("fast")
           .fuzz(iterations=400)
           .harden("mask")
           .refuzz()
           .report())
    print(run.format_summary())

Stages compose the existing subsystems without reimplementing them: a
``fuzz`` stage is a single-group campaign through the
:mod:`repro.campaign` scheduler (so checkpoints, sharding and engine
selection all apply), ``harden``/``refuzz`` are the
:func:`repro.hardening.pipeline.patch_binary` /
:func:`repro.hardening.pipeline.verify_patch` halves of the detect →
patch → verify loop, ``campaign`` runs a whole multi-target matrix, and
``bench`` measures native-vs-instrumented cycle counts the way the
paper's Figure 7 does.  Every name a stage takes (target, engine, tool,
strategy, scheduler) resolves through the plugin registries in
:mod:`repro.plugins`, so third-party plugins flow through the same
builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.result import RunResult
from repro.campaign.scheduler import run_campaign
from repro.campaign.spec import TOOLS, VARIANTS, CampaignSpec
from repro.campaign.worker import compiled_binary
from repro.hardening.pipeline import (
    HardeningResult,
    measure_cycles,
    patch_binary,
    verify_patch,
)
from repro.plugins import (
    SCHEDULER_REGISTRY,
    engine_names,
    model_names,
    strategy_names,
    target_registry,
)
from repro.sanitizers.reports import GadgetReport
from repro.targets import get_target

ProgressFn = Callable[[str], None]

#: The measurement order of the Figure-7 runtime comparison (and the
#: ``bench`` stage, which reproduces it bit for bit).
BENCH_TOOLS = ("teapot", "specfuzz", "spectaint")


def _check_scheduler(name: str) -> None:
    """Validate a scheduler name, importing lazily-registered plugins.

    ``repro.service`` registers the ``service`` scheduler on import;
    :func:`repro.plugins.scheduler_names` pulls every registering
    subsystem in before the registry rejects the name.
    """
    if name not in SCHEDULER_REGISTRY:
        from repro.plugins import scheduler_names

        scheduler_names()
    SCHEDULER_REGISTRY.get(name)


class PipelineError(ValueError):
    """A malformed pipeline: bad stage order or unknown plugin name."""


@dataclass
class _Stage:
    """One recorded builder step (internal)."""

    kind: str
    params: Dict[str, object] = field(default_factory=dict)


def pipeline(
    target: Optional[str] = None,
    variant: str = "vanilla",
    tool: str = "teapot",
    engine: str = "fast",
    seed: int = 1234,
    workers: int = 1,
    max_input_size: int = 1024,
    perf_input_size: int = 200,
    progress: Optional[ProgressFn] = None,
) -> "Pipeline":
    """Start a pipeline builder.

    ``target`` may be omitted for matrix-only pipelines (a bare
    ``.campaign()`` stage); every other stage requires one.  All names are
    validated against the plugin registries immediately, so typos fail at
    build time with a message listing the valid options.
    """
    return Pipeline(
        target=target, variant=variant, tool=tool, engine=engine, seed=seed,
        workers=workers, max_input_size=max_input_size,
        perf_input_size=perf_input_size, progress=progress,
    )


class Pipeline:
    """A fluent, validating builder for fuzz/campaign/harden/bench runs.

    Builder methods return ``self`` so calls chain; nothing executes until
    :meth:`run` / :meth:`report`.  Instances are reusable: running twice
    yields two independent (and, by construction, identical) results.
    """

    def __init__(
        self,
        target: Optional[str] = None,
        variant: str = "vanilla",
        tool: str = "teapot",
        engine: str = "fast",
        seed: int = 1234,
        workers: int = 1,
        max_input_size: int = 1024,
        perf_input_size: int = 200,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self._target: Optional[str] = None
        self._variant = "vanilla"
        self._tool = "teapot"
        self._engine = "fast"
        self._seed = seed
        self._workers = max(1, workers)
        self._max_input_size = max_input_size
        self._perf_input_size = perf_input_size
        self._progress: ProgressFn = progress or (lambda message: None)
        self._stages: List[_Stage] = []
        self._spec_variants: Tuple[str, ...] = ("pht",)
        #: a caller-owned Telemetry bundle, or None.
        self._telemetry = None
        #: kwargs for a session-owned Telemetry.create(...), or None.
        self._telemetry_spec: Optional[Dict[str, object]] = None
        #: observatory options (serve address, runs root), or None.
        self._observatory: Optional[Dict[str, object]] = None
        if target is not None:
            self.target(target)
        self.variant(variant)
        self.tool(tool)
        self.engine(engine)

    # -- configuration ------------------------------------------------------
    def target(self, name: str) -> "Pipeline":
        """Select the workload target (validated against the registry)."""
        get_target(name)  # raises UnknownPluginError listing the options
        self._target = name
        return self

    def variant(self, name: str) -> "Pipeline":
        """Select the binary variant (``vanilla`` or ``injected``)."""
        if name not in VARIANTS:
            raise PipelineError(
                f"unknown variant {name!r}; available: {', '.join(VARIANTS)}")
        self._variant = name
        return self

    def tool(self, name: str) -> "Pipeline":
        """Select the detector tool (teapot, specfuzz, spectaint)."""
        if name not in TOOLS:
            raise PipelineError(
                f"unknown tool {name!r}; available: {', '.join(TOOLS)}")
        self._tool = name
        return self

    def engine(self, name: str) -> "Pipeline":
        """Select the (result-invariant) emulator engine."""
        if name not in engine_names():
            raise PipelineError(
                f"unknown emulator engine {name!r}; "
                f"available: {', '.join(engine_names())}")
        self._engine = name
        return self

    def variants(self, *names: str) -> "Pipeline":
        """Select the speculation variants to simulate.

        Each name is a registered speculation model (``pht``, ``btb``,
        ``rsb``, ``stl``, or an ``@register_model`` plugin); fuzz/refuzz
        stages fan their campaign over every listed variant and reports
        stay attributed per variant.
        """
        if not names:
            raise PipelineError("variants() needs at least one model name")
        for name in names:
            if name not in model_names():
                raise PipelineError(
                    f"unknown speculation variant {name!r}; "
                    f"available: {', '.join(model_names())}")
        self._spec_variants = tuple(names)
        return self

    def seed(self, value: int) -> "Pipeline":
        """Set the campaign seed every stage derives from."""
        self._seed = int(value)
        return self

    def workers(self, count: int) -> "Pipeline":
        """Set the worker-pool size (execution detail, never results)."""
        self._workers = max(1, int(count))
        return self

    def perf_input(self, size: int) -> "Pipeline":
        """Set the crafted performance-input size for bench/overhead."""
        self._perf_input_size = int(size)
        return self

    def telemetry(
        self,
        telemetry=None,
        *,
        trace: Optional[str] = None,
        progress: bool = False,
        interval: float = 5.0,
        profile_engine: bool = False,
        serve=None,
        runs_root=None,
    ) -> "Pipeline":
        """Attach telemetry to the run (observation-only, see
        ``docs/observability.md``).

        Pass a ready :class:`repro.telemetry.Telemetry` bundle, or use the
        keywords to have the session build (and close) one per run:
        ``trace`` writes a structured JSONL trace, ``progress`` prints a
        live heartbeat every ``interval`` seconds, ``profile_engine``
        records per-opcode/per-address hot spots of the emulator.  The
        resulting snapshot lands in :attr:`RunResult.telemetry` either way.
        Results are bit-identical with or without telemetry.

        Two observatory options work with either form: ``serve`` starts a
        live HTTP exporter for the run (``/metrics`` in Prometheus text
        format plus ``/status``; pass ``True`` for the default local
        address, a port number, or a ``"host:port"`` string — bind port 0
        to let the OS pick) and ``runs_root`` records the run into a
        durable run directory under the given root (``True`` for the
        default ``runs/``): manifest, JSONL trace (when no explicit
        ``trace`` path is given), worker metrics spool, periodic metrics
        snapshots and the final ``RunResult`` — browsable with ``repro
        runs`` and servable after the fact with ``repro monitor``.
        """
        if telemetry is not None:
            self._telemetry = telemetry
            self._telemetry_spec = None
        else:
            self._telemetry = None
            self._telemetry_spec = {
                "trace": trace,
                "progress": bool(progress),
                "interval": float(interval),
                "profile_engine": bool(profile_engine),
            }
        self._observatory = {"serve": serve, "runs_root": runs_root}
        return self

    # -- stages -------------------------------------------------------------
    def fuzz(
        self,
        iterations: int = 400,
        rounds: int = 1,
        shards: int = 1,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        scheduler: str = "pool",
    ) -> "Pipeline":
        """Fuzz the target: one campaign group through the scheduler."""
        self._require_target("fuzz")
        _check_scheduler(scheduler)
        self._stages.append(_Stage("fuzz", {
            "iterations": int(iterations), "rounds": int(rounds),
            "shards": int(shards), "checkpoint": checkpoint,
            "resume": bool(resume), "scheduler": scheduler,
        }))
        return self

    def reports(self, reports: Sequence[GadgetReport]) -> "Pipeline":
        """Inject pre-recorded gadget reports instead of a fuzz stage.

        The reports' PCs must refer to the deterministic instrumented
        build of this (target, tool, variant) — the same contract as
        ``repro harden --report-in``.
        """
        self._require_target("reports")
        self._stages.append(_Stage("reports", {"reports": list(reports)}))
        return self

    def harden(self, strategy: str = "fence") -> "Pipeline":
        """Patch the reported gadget sites with a mitigation strategy."""
        self._require_target("harden")
        if strategy not in strategy_names():
            raise PipelineError(
                f"unknown hardening strategy {strategy!r}; "
                f"available: {', '.join(strategy_names())}")
        if not any(s.kind in ("fuzz", "reports") for s in self._stages):
            raise PipelineError(
                "harden() needs gadget reports: add a fuzz() or reports() "
                "stage first")
        self._stages.append(_Stage("harden", {"strategy": strategy}))
        return self

    def refuzz(self, iterations: Optional[int] = None,
               rounds: Optional[int] = None,
               scheduler: Optional[str] = None) -> "Pipeline":
        """Verify the hardened binary by re-running the detection campaign.

        Defaults to the preceding fuzz stage's budget and scheduler (or
        400 iterations / 1 round / the ``pool`` scheduler after a
        ``reports`` stage), mirroring
        :func:`repro.hardening.pipeline.run_hardening`.
        """
        if not any(s.kind == "harden" for s in self._stages):
            raise PipelineError("refuzz() verifies a hardened binary: add a "
                                "harden() stage first")
        if scheduler is not None:
            _check_scheduler(scheduler)
        self._stages.append(_Stage("refuzz", {
            "iterations": iterations, "rounds": rounds,
            "scheduler": scheduler,
        }))
        return self

    def campaign(
        self,
        spec: Optional[CampaignSpec] = None,
        targets: Optional[Sequence[str]] = None,
        tools: Optional[Sequence[str]] = None,
        variants: Optional[Sequence[str]] = None,
        iterations: int = 200,
        rounds: int = 2,
        shards: int = 1,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        scheduler: str = "pool",
    ) -> "Pipeline":
        """Run a whole (target × tool × variant) campaign matrix.

        Pass a ready :class:`~repro.campaign.spec.CampaignSpec` for full
        control, or the keyword shorthand (``targets`` defaults to every
        registered target; ``tools``/``variants`` to the builder's).
        """
        _check_scheduler(scheduler)
        if spec is None:
            spec = CampaignSpec(
                targets=tuple(targets if targets is not None
                              else target_registry().names()),
                tools=tuple(tools if tools is not None else (self._tool,)),
                variants=tuple(variants if variants is not None
                               else (self._variant,)),
                iterations=iterations,
                rounds=rounds,
                shards=shards,
                seed=self._seed,
                max_input_size=self._max_input_size,
                workers=self._workers,
                engine=self._engine,
                spec_variants=self._spec_variants,
            )
        self._stages.append(_Stage("campaign", {
            "spec": spec, "checkpoint": checkpoint, "resume": bool(resume),
            "scheduler": scheduler,
        }))
        return self

    def bench(self, input_size: Optional[int] = None,
              tools: Sequence[str] = BENCH_TOOLS) -> "Pipeline":
        """Measure native vs instrumented cycles on the crafted perf input.

        Reproduces the paper's §7.1 runtime methodology: nesting and all
        heuristics disabled, one run per tool over the target's crafted
        input (``input_size`` defaults to the builder's perf-input size).
        """
        self._require_target("bench")
        for tool in tools:
            if tool not in BENCH_TOOLS:
                raise PipelineError(
                    f"unknown bench tool {tool!r}; "
                    f"available: {', '.join(BENCH_TOOLS)}")
        self._stages.append(_Stage("bench", {
            "input_size": input_size, "tools": tuple(tools),
        }))
        return self

    # -- execution ----------------------------------------------------------
    def run(self) -> RunResult:
        """Execute every recorded stage and return the run artifact."""
        if not self._stages:
            raise PipelineError("empty pipeline: add at least one stage "
                                "(fuzz, campaign, harden, bench, ...)")
        return Session(self).execute()

    def report(self) -> RunResult:
        """Execute the pipeline (terminal builder call; alias of run)."""
        return self.run()

    # -- internals ----------------------------------------------------------
    def _require_target(self, stage: str) -> None:
        if self._target is None:
            raise PipelineError(
                f"{stage}() requires a target: pipeline(target=...) or "
                f".target(name)")


class Session:
    """Executes a pipeline's stages with shared intermediate state.

    :meth:`Pipeline.run` creates one per execution; instantiate directly
    (or subclass) only to intercept stage execution.
    """

    def __init__(self, builder: Pipeline) -> None:
        self.builder = builder
        self.result = RunResult(context={
            "target": builder._target,
            "variant": builder._variant,
            "tool": builder._tool,
            "engine": builder._engine,
            "seed": builder._seed,
            "workers": builder._workers,
            "perf_input_size": builder._perf_input_size,
            "spec_variants": list(builder._spec_variants),
        })
        #: gadget reports available to a harden stage.
        self._reports: Optional[List[GadgetReport]] = None
        #: the detection campaign spec (refuzz reruns it verbatim).
        self._detect_spec: Optional[CampaignSpec] = None
        #: the detection campaign's scheduler plugin (refuzz reuses it).
        self._detect_scheduler = "pool"
        #: executions the detection campaign performed.
        self._detect_executions = 0
        #: the last harden stage's patch outcome (with cycle accounting).
        self._patch = None
        self._patch_cycles: Tuple[int, int] = (0, 0)
        #: the run's Telemetry bundle (None when telemetry is off).
        self._telemetry = None

    # -- driver -------------------------------------------------------------
    def execute(self) -> RunResult:
        observatory = self.builder._observatory or {}
        run_dir = self._create_run_dir(observatory)
        telemetry, owned = self._materialize_telemetry(run_dir)
        if telemetry is None:
            for stage in self.builder._stages:
                handler = getattr(self, f"_run_{stage.kind}")
                handler(**stage.params)
            return self.result

        import os
        import tempfile

        from repro.telemetry.context import session as telemetry_session
        from repro.telemetry.spool import MetricsSpool

        self._telemetry = telemetry
        exporter = None
        spool_tmp: Optional[str] = None
        status = "completed"
        try:
            if run_dir is not None:
                telemetry.run_dir = run_dir
                telemetry.spool = MetricsSpool(run_dir.spool_path)
            serve = observatory.get("serve")
            if serve not in (None, False):
                from repro.telemetry.export import parse_address, serve_metrics
                from repro.telemetry.runs import RunRegistry

                if telemetry.spool is None:
                    # No run directory: the worker spool still needs a
                    # file for live mid-round counters.
                    fd, spool_tmp = tempfile.mkstemp(prefix="repro-spool-",
                                                     suffix=".jsonl")
                    os.close(fd)
                    telemetry.spool = MetricsSpool(spool_tmp)
                host, port = parse_address(
                    serve if isinstance(serve, str)
                    else (str(serve) if isinstance(serve, int)
                          and not isinstance(serve, bool) else ""))
                registry = (RunRegistry(os.path.dirname(run_dir.path))
                            if run_dir is not None else None)
                exporter = serve_metrics(telemetry, registry=registry,
                                         host=host, port=port)
                self._progress(f"serving /metrics and /status on "
                               f"{exporter.url}")
            with telemetry_session(telemetry):
                with telemetry.span("pipeline"):
                    for stage in self.builder._stages:
                        handler = getattr(self, f"_run_{stage.kind}")
                        with telemetry.span(f"stage:{stage.kind}"):
                            handler(**stage.params)
            self.result.telemetry = telemetry.snapshot()
        except BaseException:
            status = "failed"
            raise
        finally:
            if exporter is not None:
                exporter.stop()
            if run_dir is not None:
                try:
                    run_dir.write_metrics_snapshot(telemetry)
                    run_dir.write_result(self.result)
                    run_dir.finalize(status=status)
                except OSError:
                    pass
            if spool_tmp is not None:
                try:
                    os.unlink(spool_tmp)
                except OSError:
                    pass
            if owned:
                telemetry.close()
        return self.result

    def _create_run_dir(self, observatory: Dict[str, object]):
        """Allocate the durable run directory when ``runs_root`` asks."""
        runs_root = observatory.get("runs_root")
        if not runs_root:
            return None
        from repro.telemetry.runs import DEFAULT_RUNS_ROOT, RunRegistry

        root = runs_root if isinstance(runs_root, str) else DEFAULT_RUNS_ROOT
        builder = self.builder
        return RunRegistry(root).create_run(
            command="pipeline:" + ",".join(
                stage.kind for stage in builder._stages),
            target=builder._target,
            engine=builder._engine,
            variants=list(builder._spec_variants),
            config=dict(self.result.context),
        )

    def _materialize_telemetry(self, run_dir=None):
        """The run's Telemetry bundle and whether this session owns it."""
        builder = self.builder
        if builder._telemetry is not None:
            return builder._telemetry, False
        if builder._telemetry_spec is not None:
            from repro.telemetry import Telemetry

            spec = builder._telemetry_spec
            trace = spec["trace"]
            if trace is None and run_dir is not None:
                # A recorded run always gets its trace unless the caller
                # routed it elsewhere explicitly.
                trace = run_dir.trace_path
            return Telemetry.create(
                trace=trace,
                progress=spec["progress"],
                interval=spec["interval"],
                profile_engine=spec["profile_engine"],
                context_info=dict(self.result.context),
            ), True
        return None, False

    # -- stage implementations ---------------------------------------------
    def _group_spec(self, iterations: int, rounds: int,
                    shards: int = 1) -> CampaignSpec:
        """The single-group campaign spec fuzz and refuzz stages share.

        Matches :func:`repro.hardening.pipeline.run_hardening`'s detection
        spec field for field, which is what keeps facade runs bit-identical
        with the classic entry points.
        """
        b = self.builder
        return CampaignSpec(
            targets=(b._target,),
            tools=(b._tool,),
            variants=(b._variant,),
            iterations=iterations,
            rounds=rounds,
            shards=shards,
            seed=b._seed,
            max_input_size=b._max_input_size,
            workers=b._workers,
            engine=b._engine,
            skip_uninjectable=False,
            spec_variants=b._spec_variants,
        )

    def _run_fuzz(self, iterations: int, rounds: int, shards: int,
                  checkpoint: Optional[str], resume: bool,
                  scheduler: str) -> None:
        b = self.builder
        spec = self._group_spec(iterations, rounds, shards=shards)
        self._progress(f"fuzzing {b._target}/{b._variant} with {b._tool} "
                       f"({iterations} executions)")
        summary = run_campaign(spec, checkpoint_path=checkpoint,
                               resume=resume, progress=b._progress,
                               scheduler=scheduler)
        row = summary.row(b._target, b._tool, b._variant)
        self._reports = row.collection.reports()
        self._detect_spec = spec
        self._detect_scheduler = scheduler
        self._detect_executions = row.executions
        self.result.summary = summary
        payload = row.as_campaign_result().to_dict()
        payload.update({
            "spec": spec.to_dict(),
            "fingerprint": summary.fingerprint,
            "unique_gadgets": row.unique_gadgets,
            "by_category": dict(sorted(row.by_category.items())),
            "by_variant": dict(sorted(row.by_variant.items())),
        })
        self.result.add_stage("fuzz", f"{b._target}/{b._tool}", payload)

    def _run_reports(self, reports: List[GadgetReport]) -> None:
        self._reports = list(reports)
        self.result.add_stage("reports", "pre-recorded", {
            "count": len(reports),
            "reports": [report.to_dict() for report in reports],
        })

    def _run_harden(self, strategy: str) -> None:
        b = self.builder
        self._progress(f"hardening {b._target}/{b._variant} with {strategy}")
        patch = patch_binary(b._target, strategy, variant=b._variant,
                             tool=b._tool, reports=self._reports or [])
        perf_input = get_target(b._target).perf_input(b._perf_input_size)
        native = measure_cycles(patch.base_binary, perf_input, b._engine)
        hardened = measure_cycles(patch.hardened, perf_input, b._engine)
        self._patch = patch
        self._patch_cycles = (native, hardened)
        if self._telemetry is not None:
            registry = self._telemetry.registry
            registry.counter("harden.sites_patched").inc(
                len(patch.site_reports))
            registry.gauge("harden.native_cycles").set(native)
            registry.gauge("harden.hardened_cycles").set(hardened)
        self.result.add_stage("harden", strategy, {
            "strategy": strategy,
            "sites": len(patch.site_reports),
            "sites_before": patch.sites_before,
            "pass_stats": patch.pass_stats,
            "native_cycles": native,
            "hardened_cycles": hardened,
            "overhead": round(hardened / native, 4) if native else 1.0,
        })

    def _run_refuzz(self, iterations: Optional[int],
                    rounds: Optional[int],
                    scheduler: Optional[str]) -> None:
        b = self.builder
        patch = self._patch
        if self._detect_spec is not None:
            base = self._detect_spec
            spec = self._group_spec(
                iterations if iterations is not None else base.iterations,
                rounds if rounds is not None else base.rounds,
                shards=base.shards,
            )
        else:
            spec = self._group_spec(
                iterations if iterations is not None else 400,
                rounds if rounds is not None else 1,
            )
        if scheduler is None:
            scheduler = self._detect_scheduler
        self._progress(f"re-fuzzing hardened binary ({patch.strategy})")
        verification = verify_patch(patch, spec, scheduler=scheduler)

        native, hardened_cycles = self._patch_cycles
        hardening = HardeningResult(
            target=b._target, variant=b._variant, tool=b._tool,
            strategy=patch.strategy, engine=b._engine,
            iterations=spec.iterations, seed=b._seed,
            sites_before=patch.sites_before,
            eliminated=verification.eliminated,
            residual=verification.residual,
            new_sites=verification.new_sites,
            pass_stats=patch.pass_stats,
            native_cycles=native,
            hardened_cycles=hardened_cycles,
            baseline_executions=self._detect_executions,
            verify_executions=verification.executions,
        )
        self.result.hardening_result = hardening
        if self._telemetry is not None:
            registry = self._telemetry.registry
            registry.counter("harden.refuzz_executions").inc(
                verification.executions)
            registry.gauge("harden.eliminated").set(
                len(verification.eliminated))
            registry.gauge("harden.residual").set(len(verification.residual))
            registry.gauge("harden.new_sites").set(
                len(verification.new_sites))
        payload = hardening.to_dict()
        payload["all_eliminated"] = hardening.all_eliminated
        self.result.add_stage("refuzz", patch.strategy, payload)

    def _run_campaign(self, spec: CampaignSpec, checkpoint: Optional[str],
                      resume: bool, scheduler: str) -> None:
        self._progress(
            f"campaign matrix: {len(spec.groups())} groups x "
            f"{spec.iterations} executions")
        summary = run_campaign(spec, checkpoint_path=checkpoint,
                               resume=resume, progress=self.builder._progress,
                               scheduler=scheduler)
        self.result.summary = summary
        self.result.add_stage("campaign", f"{len(spec.groups())} groups", {
            "spec": spec.to_dict(),
            "summary": summary.to_dict(),
        })

    def _run_bench(self, input_size: Optional[int],
                   tools: Tuple[str, ...]) -> None:
        from repro.baselines.specfuzz import (
            SpecFuzzConfig,
            SpecFuzzRewriter,
            SpecFuzzRuntime,
        )
        from repro.baselines.spectaint import SpecTaintAnalyzer, SpecTaintConfig
        from repro.core.config import TeapotConfig
        from repro.core.teapot import TeapotRewriter, TeapotRuntime

        b = self.builder
        size = input_size if input_size is not None else b._perf_input_size
        target = get_target(b._target)
        binary = compiled_binary(b._target, b._variant)
        perf_input = target.perf_input(size)
        self._progress(f"bench: {b._target} perf input of {size} bytes")
        native = measure_cycles(binary, perf_input, b._engine)

        tool_cycles: Dict[str, int] = {}
        if "teapot" in tools:
            config = TeapotConfig(engine=b._engine).without_nesting()
            instrumented = TeapotRewriter(config).instrument(binary)
            tool_cycles["teapot"] = TeapotRuntime(
                instrumented, config=config).run(perf_input).cycles
        if "specfuzz" in tools:
            sf_config = SpecFuzzConfig(engine=b._engine).without_nesting()
            sf_binary = SpecFuzzRewriter(sf_config).instrument(binary)
            tool_cycles["specfuzz"] = SpecFuzzRuntime(
                sf_binary, config=sf_config).run(perf_input).cycles
        if "spectaint" in tools:
            st_config = SpecTaintConfig().without_nesting()
            tool_cycles["spectaint"] = SpecTaintAnalyzer(
                binary, config=st_config).run(perf_input).cycles

        self.result.add_stage("bench", b._target, {
            "input_size": size,
            "native_cycles": native,
            "tool_cycles": tool_cycles,
            "normalized": {tool: round(cycles / native, 4)
                           for tool, cycles in tool_cycles.items()},
        })

    def _progress(self, message: str) -> None:
        self.builder._progress(f"[pipeline] {message}")
