"""Binary dynamic information-flow tracking (DIFT), paper §6.2.2.

Tags are small bit sets stored one byte per user-memory byte in the *tag
shadow*, which maps to user memory by flipping bit 45 of the address (paper
Table 2).  Registers and the flags register carry tags as well.

Tag bits:

* ``TAG_USER`` — attacker-directly controlled data (the paper's *User*):
  bytes produced by input-reading externals, ``argv`` and anything derived
  from them.
* ``TAG_MASSAGE`` — attacker-indirectly controlled data (the paper's
  *Massage*): outcomes of speculative out-of-bounds accesses, which may be
  wild values the attacker shaped by massaging memory.
* ``TAG_SECRET_USER`` / ``TAG_SECRET_MASSAGE`` — secrets, split by how the
  access that produced them was controlled so reports can be categorised as
  ``User-*`` vs ``Massage-*`` (paper Table 4).

Propagation follows DFSan's model: data movement and arithmetic union the
tags of their inputs into the output; loads take the tag of the loaded
bytes; stores write the tag of the stored value; compares taint the flags.
Address registers do *not* implicitly taint loaded values — address-based
flows are what the Kasper policy's sink checks look for explicitly.

Tag *writes* performed during speculation simulation are logged through the
speculation controller so rollback also restores taint state, exactly like
the paper's "log the tag changes for later rollback".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import Register
from repro.loader.layout import DEFAULT_LAYOUT, MemoryLayout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime ↔ sanitizers)
    from repro.runtime.machine import MachineState, Memory

TAG_USER = 0x01
TAG_MASSAGE = 0x02
TAG_SECRET_USER = 0x04
TAG_SECRET_MASSAGE = 0x08

TAG_ANY_ATTACKER = TAG_USER | TAG_MASSAGE
TAG_ANY_SECRET = TAG_SECRET_USER | TAG_SECRET_MASSAGE
ALL_TAGS = TAG_USER | TAG_MASSAGE | TAG_SECRET_USER | TAG_SECRET_MASSAGE


class BinaryDift:
    """Byte-granular taint tracker over the TVM machine state."""

    # Exposed so externals can refer to tags without importing constants.
    TAG_USER = TAG_USER
    TAG_MASSAGE = TAG_MASSAGE
    TAG_SECRET_USER = TAG_SECRET_USER
    TAG_SECRET_MASSAGE = TAG_SECRET_MASSAGE

    def __init__(self, memory: Memory, layout: MemoryLayout = DEFAULT_LAYOUT) -> None:
        self.memory = memory
        self.layout = layout
        self.register_tags: List[int] = [0] * 16
        self.flags_tag: int = 0
        #: speculation controller used to log tag writes for rollback
        #: (attached by the emulator).
        self.controller = None
        #: whether new input is tagged (Table 3 disables taint sources and
        #: marks only the artificial gadget's variable instead).
        self.sources_enabled = True
        #: statistics
        self.bytes_tagged_user = 0

    # -- register tags -----------------------------------------------------------
    def get_register_tag(self, reg: Register) -> int:
        """Tag bits currently attached to a register."""
        return self.register_tags[int(reg)]

    def set_register_tag(self, reg: Register, tag: int) -> None:
        """Replace a register's tag bits."""
        self.register_tags[int(reg)] = tag & ALL_TAGS

    def or_register_tag(self, reg: Register, tag: int) -> None:
        """Union additional tag bits into a register."""
        self.register_tags[int(reg)] |= tag & ALL_TAGS

    def snapshot_register_tags(self) -> Tuple[int, ...]:
        """Capture register tags (for checkpoints)."""
        return tuple(self.register_tags)

    def restore_register_tags(self, snapshot) -> None:
        """Restore register tags from a snapshot."""
        self.register_tags = list(snapshot)

    # -- memory tags --------------------------------------------------------------
    def _tag_address(self, addr: int) -> int:
        return self.layout.tag_shadow_address(addr)

    def _write_tag_byte(self, addr: int, tag: int) -> None:
        shadow = self._tag_address(addr)
        if self.controller is not None and self.controller.in_simulation:
            old = self.memory.read_shadow_byte(shadow)
            if old != (tag & 0xFF):
                self.controller.log_taint_write(shadow, old)
        self.memory.write_shadow_byte(shadow, tag & 0xFF)

    def _contiguous_shadow(self, addr: int, size: int) -> bool:
        """Whether the tag shadow of ``[addr, addr+size)`` is one flat range.

        The bit-45 flip preserves contiguity as long as the range does not
        cross a bit-45 boundary — always true for real user memory, checked
        explicitly so wild speculative addresses fall back to the exact
        per-byte path.
        """
        return addr >= 0 and (addr >> 45) == ((addr + size - 1) >> 45)

    def get_mem_tag(self, addr: int, size: int) -> int:
        """Union of the tags of ``size`` bytes at ``addr``."""
        if size > 1 and self._contiguous_shadow(addr, size):
            tag = 0
            for byte in self.memory.read_shadow(self._tag_address(addr), size):
                tag |= byte
            return tag & ALL_TAGS
        tag = 0
        for offset in range(size):
            tag |= self.memory.read_shadow_byte(self._tag_address(addr + offset))
        return tag & ALL_TAGS

    def set_mem_tag(self, addr: int, size: int, tag: int) -> None:
        """Set the tag of every byte in ``[addr, addr+size)``."""
        in_sim = self.controller is not None and self.controller.in_simulation
        if size > 1 and not in_sim and self._contiguous_shadow(addr, size):
            # Outside simulation no taint logging is needed: one bulk write.
            self.memory.write_shadow(self._tag_address(addr),
                                     bytes([tag & 0xFF]) * size)
            return
        for offset in range(size):
            self._write_tag_byte(addr + offset, tag)

    def or_mem_tag(self, addr: int, size: int, tag: int) -> None:
        """Union additional tag bits into every byte of the range."""
        for offset in range(size):
            current = self.memory.read_shadow_byte(self._tag_address(addr + offset))
            self._write_tag_byte(addr + offset, current | tag)

    def clear_mem_tags(self, addr: int, size: int) -> None:
        """Clear the tags of a memory range (e.g. after ``memset``)."""
        self.set_mem_tag(addr, size, 0)

    def copy_mem_tags(self, dst: int, src: int, size: int) -> None:
        """Copy tags byte-by-byte (used by ``memcpy``-style externals)."""
        in_sim = self.controller is not None and self.controller.in_simulation
        if (
            size > 1
            and not in_sim
            and self._contiguous_shadow(src, size)
            and self._contiguous_shadow(dst, size)
        ):
            tags = self.memory.read_shadow(self._tag_address(src), size)
            self.memory.write_shadow(self._tag_address(dst), tags)
            return
        tags = [
            self.memory.read_shadow_byte(self._tag_address(src + i))
            for i in range(size)
        ]
        for i, tag in enumerate(tags):
            self._write_tag_byte(dst + i, tag)

    # -- taint sources --------------------------------------------------------------
    def mark_user_input(self, addr: int, size: int) -> None:
        """Mark freshly read input bytes as attacker-directly controlled."""
        if not self.sources_enabled:
            return
        self.set_mem_tag(addr, size, TAG_USER)
        self.bytes_tagged_user += size

    def mark_region(self, addr: int, size: int, tag: int) -> None:
        """Mark an arbitrary region with a tag (used by Table 3's setup,
        which tags only the artificial gadget's input variable)."""
        self.set_mem_tag(addr, size, tag)

    # -- propagation -------------------------------------------------------------------
    def propagate(self, instr: Instruction, machine: MachineState) -> None:
        """Propagate tags for one architectural instruction.

        Must be called *before* the instruction executes (source values and
        addresses are still intact).
        """
        opcode = instr.opcode
        if opcode is Opcode.MOV:
            dst, src = instr.operands
            self.set_register_tag(dst.reg, self._operand_tag(src, machine))
        elif opcode is Opcode.LOAD:
            dst, mem = instr.operands
            addr = machine.effective_address(mem)
            self.set_register_tag(dst.reg, self.get_mem_tag(addr, instr.size))
        elif opcode is Opcode.STORE:
            mem, src = instr.operands
            addr = machine.effective_address(mem)
            self.set_mem_tag(addr, instr.size, self._operand_tag(src, machine))
        elif opcode is Opcode.LEA:
            dst, mem = instr.operands
            tag = 0
            for reg in mem.registers():
                tag |= self.get_register_tag(reg)
            self.set_register_tag(dst.reg, tag)
        elif opcode is Opcode.PUSH:
            (src,) = instr.operands
            addr = machine.sp - 8
            self.set_mem_tag(addr, 8, self._operand_tag(src, machine))
        elif opcode is Opcode.POP:
            (dst,) = instr.operands
            self.set_register_tag(dst.reg, self.get_mem_tag(machine.sp, 8))
        elif opcode in (Opcode.CMP, Opcode.TEST):
            a, b = instr.operands
            self.flags_tag = (
                self._operand_tag(a, machine) | self._operand_tag(b, machine)
            )
        elif opcode in _TWO_OPERAND_ALU:
            dst = instr.operands[0]
            src = instr.operands[1] if len(instr.operands) > 1 else None
            if (
                opcode in (Opcode.XOR, Opcode.SUB)
                and isinstance(src, Reg)
                and src.reg == dst.reg
            ):
                # Idiomatic zeroing (xor r, r / sub r, r) clears the taint.
                tag = 0
            else:
                tag = self.get_register_tag(dst.reg)
                if src is not None:
                    tag |= self._operand_tag(src, machine)
            self.set_register_tag(dst.reg, tag)
            self.flags_tag = tag
        elif opcode in (Opcode.NOT, Opcode.NEG):
            dst = instr.operands[0]
            tag = self.get_register_tag(dst.reg)
            self.set_register_tag(dst.reg, tag)
            self.flags_tag = tag
        # Control flow, system and pseudo instructions do not move data.

    def _operand_tag(self, operand, machine: MachineState) -> int:
        if isinstance(operand, Reg):
            return self.get_register_tag(operand.reg)
        if isinstance(operand, Imm):
            return 0
        if isinstance(operand, Mem):
            addr = machine.effective_address(operand)
            return self.get_mem_tag(addr, 8)
        return 0

    # -- queries used by detection policies ---------------------------------------------
    def address_tag(self, mem: Mem, machine: MachineState) -> int:
        """Union of the tags of the registers forming an effective address."""
        tag = 0
        for reg in mem.registers():
            tag |= self.get_register_tag(reg)
        return tag

    def reset(self) -> None:
        """Clear register and flags tags (memory tags are per-run anyway)."""
        self.register_tags = [0] * 16
        self.flags_tag = 0
        self.bytes_tagged_user = 0


_TWO_OPERAND_ALU = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.SAR,
    }
)
