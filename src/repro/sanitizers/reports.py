"""Gadget report records and aggregation helpers.

A :class:`GadgetReport` is what the detection policies hand to the fuzzer
when an integrity check fires during speculation simulation (paper §6.2.3).
Reports are deduplicated by *gadget site* — the program counter of the
transmitting instruction together with the channel, the attacker class and
the speculation variant (PHT/BTB/RSB/STL) whose simulation surfaced it —
because fuzzing revisits the same gadget many times.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Channel(enum.Enum):
    """Side channel through which a gadget leaks (paper Fig. 6)."""

    MDS = "mds"
    CACHE = "cache"
    PORT = "port"


class AttackerClass(enum.Enum):
    """How the attacker controls the leaking access (paper §7.3 naming)."""

    USER = "user"        # attacker-directly controlled (User-*)
    MASSAGE = "massage"  # attacker-indirectly controlled (Massage-*)
    UNKNOWN = "unknown"  # baselines that cannot classify control


@dataclass(frozen=True)
class GadgetReport:
    """One detected Spectre gadget occurrence."""

    tool: str
    channel: Channel
    attacker: AttackerClass
    pc: int
    branch_addresses: Tuple[int, ...]
    depth: int
    description: str = ""
    #: speculation variant whose simulation surfaced the gadget ("pht",
    #: "btb", "rsb", "stl", or a third-party model name).
    variant: str = "pht"

    @property
    def site(self) -> Tuple[str, str, int, str]:
        """Deduplication key: (channel, attacker, transmitting pc, variant).

        The variant is part of the site: a PHT gadget and an STL gadget at
        the same program counter are different findings (they need
        different mitigations) and must never be silently merged.
        """
        return (self.channel.value, self.attacker.value, self.pc,
                self.variant)

    @property
    def category(self) -> str:
        """Category label in the paper's Table 4 style, e.g. ``User-Cache``."""
        return f"{self.attacker.value.capitalize()}-{self.channel.value.upper() if self.channel is Channel.MDS else self.channel.value.capitalize()}"

    def to_dict(self) -> Dict[str, object]:
        """Stable, JSON-ready serialization (campaign checkpoints, workers)."""
        return {
            "tool": self.tool,
            "channel": self.channel.value,
            "attacker": self.attacker.value,
            "pc": self.pc,
            "branch_addresses": list(self.branch_addresses),
            "depth": self.depth,
            "description": self.description,
            "variant": self.variant,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "GadgetReport":
        """Rebuild a report from :meth:`to_dict` output.

        Records written before the multi-variant world carry no
        ``variant`` field; they were all produced by conditional-branch
        simulation, so the field defaults to ``"pht"``.
        """
        return cls(
            tool=str(record["tool"]),
            channel=Channel(record["channel"]),
            attacker=AttackerClass(record["attacker"]),
            pc=int(record["pc"]),
            branch_addresses=tuple(record.get("branch_addresses", ())),
            depth=int(record.get("depth", 0)),
            description=str(record.get("description", "")),
            variant=str(record.get("variant", "pht")),
        )


class ReportCollection:
    """A deduplicated set of gadget reports with category accounting."""

    def __init__(self) -> None:
        self._by_site: Dict[Tuple[str, str, int], GadgetReport] = {}
        self.total_raw = 0

    def add(self, report: GadgetReport) -> bool:
        """Add a report; returns ``True`` if its site was new."""
        self.total_raw += 1
        if report.site in self._by_site:
            return False
        self._by_site[report.site] = report
        return True

    def extend(self, reports: Iterable[GadgetReport]) -> None:
        """Add many reports."""
        for report in reports:
            self.add(report)

    def merge(self, other: "ReportCollection") -> int:
        """Fold another collection's unique reports in; returns new sites.

        ``total_raw`` sums so cross-worker dedup ratios stay meaningful:
        the merged collection counts every raw occurrence either side saw.
        """
        new = 0
        for report in other._by_site.values():
            if report.site not in self._by_site:
                self._by_site[report.site] = report
                new += 1
        self.total_raw += other.total_raw
        return new

    def to_dicts(self) -> List[Dict[str, object]]:
        """Serialize the unique reports, sorted by site for stable output."""
        return [
            self._by_site[site].to_dict() for site in sorted(self._by_site)
        ]

    @classmethod
    def from_dicts(cls, records: Iterable[Dict[str, object]],
                   total_raw: int = 0) -> "ReportCollection":
        """Rebuild a collection from :meth:`to_dicts` output."""
        collection = cls()
        for record in records:
            collection.add(GadgetReport.from_dict(record))
        # ``add`` counted each record once; restore the recorded raw total
        # when the checkpoint carried one.
        if total_raw:
            collection.total_raw = total_raw
        return collection

    def __len__(self) -> int:
        return len(self._by_site)

    def __iter__(self) -> Iterator[GadgetReport]:
        return iter(self._by_site.values())

    def reports(self) -> List[GadgetReport]:
        """All unique reports."""
        return list(self._by_site.values())

    def unique_pcs(self) -> List[int]:
        """Program counters of all unique gadget sites."""
        return sorted({r.pc for r in self._by_site.values()})

    def count_by_category(self) -> Dict[str, int]:
        """Unique gadget counts per ``Attacker-Channel`` category."""
        counts: Dict[str, int] = {}
        for report in self._by_site.values():
            counts[report.category] = counts.get(report.category, 0) + 1
        return counts

    def count_by_variant(self) -> Dict[str, int]:
        """Unique gadget counts per speculation variant."""
        counts: Dict[str, int] = {}
        for report in self._by_site.values():
            counts[report.variant] = counts.get(report.variant, 0) + 1
        return counts

    def count(
        self,
        channel: Optional[Channel] = None,
        attacker: Optional[AttackerClass] = None,
    ) -> int:
        """Count unique reports matching the given channel/attacker filters."""
        total = 0
        for report in self._by_site.values():
            if channel is not None and report.channel is not channel:
                continue
            if attacker is not None and report.attacker is not attacker:
                continue
            total += 1
        return total
