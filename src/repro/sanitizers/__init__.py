"""Binary sanitizers and gadget detection policies.

Implements the detection building blocks of paper §6.2:

* :mod:`repro.sanitizers.asan` — binary AddressSanitizer: shadow memory,
  heap redzones (via the allocator hooks in :mod:`repro.runtime.heap`),
  stack return-address poisoning, and the global-object limitation the
  paper documents.
* :mod:`repro.sanitizers.dift` — binary dynamic information-flow tracking
  with a byte-granular tag shadow (bit-45 flip mapping, paper Table 2) and
  DFSan-style propagation.
* :mod:`repro.sanitizers.policy` — pluggable gadget detection policies:
  the Kasper policy used by Teapot (paper Fig. 6), SpecFuzz's ASan-only
  policy and SpecTaint's taint-only policy for the baselines.
* :mod:`repro.sanitizers.reports` — the :class:`GadgetReport` records the
  fuzzer collects and the experiment harness aggregates.
"""

from repro.sanitizers.reports import Channel, AttackerClass, GadgetReport, ReportCollection
from repro.sanitizers.asan import BinaryAsan
from repro.sanitizers.dift import BinaryDift, TAG_USER, TAG_MASSAGE, TAG_SECRET_USER, TAG_SECRET_MASSAGE
from repro.sanitizers.policy import (
    DetectionPolicy,
    KasperPolicy,
    SpecFuzzPolicy,
    SpecTaintPolicy,
)

__all__ = [
    "Channel",
    "AttackerClass",
    "GadgetReport",
    "ReportCollection",
    "BinaryAsan",
    "BinaryDift",
    "TAG_USER",
    "TAG_MASSAGE",
    "TAG_SECRET_USER",
    "TAG_SECRET_MASSAGE",
    "DetectionPolicy",
    "KasperPolicy",
    "SpecFuzzPolicy",
    "SpecTaintPolicy",
]
