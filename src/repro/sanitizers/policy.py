"""Gadget detection policies (paper §6.2, Fig. 6).

Teapot decouples its architecture from the detection policy; this module
implements three policies behind a common interface:

:class:`KasperPolicy`
    the policy Teapot adopts (paper Fig. 6).  It tracks attacker-direct
    (*User*) and attacker-indirect (*Massage*) data with DIFT, promotes
    values loaded through attacker-controlled out-of-bounds or wild-pointer
    accesses to *secret*, and reports a gadget when a secret is loaded
    (MDS), used to compose a dereferenced pointer (Cache) or influences a
    conditional branch (Port).
:class:`SpecFuzzPolicy`
    SpecFuzz's policy: every speculative out-of-bounds access is a gadget.
    No data-flow tracking, hence the large false-positive counts in the
    paper's Tables 3 and 4.
:class:`SpecTaintPolicy`
    SpecTaint's policy: working at the whole-system level it cannot tell
    out-of-bounds from legal accesses, so every *user-controlled* memory
    access is assumed to load a secret; leaking that value through a
    dereference reports a gadget.  No Massage tracking, no OOB requirement.

The emulator invokes policy callbacks when instrumentation pseudo-ops
execute inside speculation simulation; the policy emits
:class:`~repro.sanitizers.reports.GadgetReport` records.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.operands import Mem
from repro.sanitizers.asan import BinaryAsan
from repro.sanitizers.dift import (
    BinaryDift,
    TAG_ANY_SECRET,
    TAG_MASSAGE,
    TAG_SECRET_MASSAGE,
    TAG_SECRET_USER,
    TAG_USER,
)
from repro.sanitizers.reports import AttackerClass, Channel, GadgetReport


class DetectionPolicy:
    """Base class: no-op policy (used for pure performance runs)."""

    #: name recorded in reports
    tool_name = "none"
    #: whether the policy needs ASan checks inserted
    needs_asan = False
    #: whether the policy needs DIFT propagation
    needs_dift = False

    def __init__(self) -> None:
        self.reports: List[GadgetReport] = []
        self.asan: Optional[BinaryAsan] = None
        self.dift: Optional[BinaryDift] = None

    # -- wiring -------------------------------------------------------------
    def attach(self, asan: Optional[BinaryAsan], dift: Optional[BinaryDift]) -> None:
        """Attach the sanitizer instances the emulator created."""
        self.asan = asan
        self.dift = dift

    def _report(
        self,
        channel: Channel,
        attacker: AttackerClass,
        pc: int,
        branch_addresses: Tuple[int, ...],
        depth: int,
        description: str = "",
        variant: str = "pht",
    ) -> GadgetReport:
        report = GadgetReport(
            tool=self.tool_name,
            channel=channel,
            attacker=attacker,
            pc=pc,
            branch_addresses=branch_addresses,
            depth=depth,
            description=description,
            variant=variant,
        )
        self.reports.append(report)
        return report

    @staticmethod
    def _variant(context) -> str:
        """Speculation variant of the innermost simulation of ``context``
        (the speculation controller); ``"pht"`` for controllers predating
        the model subsystem."""
        return getattr(context, "current_model", "pht")

    def drain_reports(self) -> List[GadgetReport]:
        """Return and clear the accumulated reports."""
        reports, self.reports = self.reports, []
        return reports

    # -- callbacks (defaults: do nothing) --------------------------------------
    def on_speculative_access(
        self,
        instr: Instruction,
        mem: Mem,
        addr: int,
        size: int,
        is_write: bool,
        machine,
        context,
    ) -> int:
        """Called for each instrumented memory access in the Shadow Copy.

        Returns tag bits to union into the destination of a load (secret
        promotion); ``0`` when nothing should be promoted.
        """
        return 0

    def on_speculative_branch(self, instr: Instruction, machine, context) -> None:
        """Called before each conditional branch in the Shadow Copy."""

    def reset(self) -> None:
        """Clear accumulated reports (between fuzzing campaigns)."""
        self.reports.clear()


class KasperPolicy(DetectionPolicy):
    """Teapot's default policy: the Kasper policy of paper Fig. 6."""

    tool_name = "teapot"
    needs_asan = True
    needs_dift = True

    def __init__(self, massage_enabled: bool = True) -> None:
        super().__init__()
        #: whether speculative OOB outcomes become attacker-indirect data;
        #: Table 3 disables this to avoid noise from non-injected gadgets.
        self.massage_enabled = massage_enabled

    # -- helpers ------------------------------------------------------------------
    @staticmethod
    def _attacker_from_secret(tag: int) -> AttackerClass:
        if tag & TAG_SECRET_USER:
            return AttackerClass.USER
        return AttackerClass.MASSAGE

    def on_speculative_access(self, instr, mem, addr, size, is_write, machine, context):
        assert self.dift is not None and self.asan is not None
        addr_tag = self.dift.address_tag(mem, machine)
        promoted = 0
        pc = instr.address if instr.address is not None else 0
        branches = context.branch_addresses
        depth = context.depth
        variant = self._variant(context)

        # Secret used to compose a dereferenced pointer -> cache transmitter.
        if addr_tag & TAG_ANY_SECRET:
            self._report(
                Channel.CACHE,
                self._attacker_from_secret(addr_tag),
                pc,
                branches,
                depth,
                "secret-dependent pointer dereference",
                variant=variant,
            )

        in_bounds = self.asan.check_access(addr, size)

        if not is_write:
            if addr_tag & TAG_USER and not in_bounds:
                # Attacker-directly controlled out-of-bounds load: the loaded
                # value is a secret and is immediately MDS-leakable.
                promoted |= TAG_SECRET_USER
                self._report(
                    Channel.MDS,
                    AttackerClass.USER,
                    pc,
                    branches,
                    depth,
                    "attacker-direct out-of-bounds load",
                    variant=variant,
                )
            elif addr_tag & TAG_MASSAGE:
                # Wild pointer constructed from a speculative OOB value: any
                # access through it loads a secret.
                promoted |= TAG_SECRET_MASSAGE
                self._report(
                    Channel.MDS,
                    AttackerClass.MASSAGE,
                    pc,
                    branches,
                    depth,
                    "attacker-indirect (massaged) pointer load",
                    variant=variant,
                )
            elif self.massage_enabled and not in_bounds:
                # Speculative OOB with an untainted pointer: the outcome is
                # attacker-indirectly controlled (it may be massaged).
                promoted |= TAG_MASSAGE
        return promoted

    def on_speculative_branch(self, instr, machine, context):
        assert self.dift is not None
        if self.dift.flags_tag & TAG_ANY_SECRET:
            self._report(
                Channel.PORT,
                self._attacker_from_secret(self.dift.flags_tag),
                instr.address if instr.address is not None else 0,
                context.branch_addresses,
                context.depth,
                "secret-dependent branch (port contention)",
                variant=self._variant(context),
            )


class SpecFuzzPolicy(DetectionPolicy):
    """SpecFuzz's ASan-only policy: every speculative OOB access is a gadget."""

    tool_name = "specfuzz"
    needs_asan = True
    needs_dift = False

    def on_speculative_access(self, instr, mem, addr, size, is_write, machine, context):
        assert self.asan is not None
        if not self.asan.check_access(addr, size):
            self._report(
                Channel.MDS,
                AttackerClass.UNKNOWN,
                instr.address if instr.address is not None else 0,
                context.branch_addresses,
                context.depth,
                "speculative out-of-bounds access",
                variant=self._variant(context),
            )
        return 0


class SpecTaintPolicy(DetectionPolicy):
    """SpecTaint's taint-only policy (no program-level bounds information).

    Every memory access whose address is user-controlled is assumed to load
    a secret; a subsequent dereference of that value reports a gadget.
    """

    tool_name = "spectaint"
    needs_asan = False
    needs_dift = True

    def on_speculative_access(self, instr, mem, addr, size, is_write, machine, context):
        assert self.dift is not None
        addr_tag = self.dift.address_tag(mem, machine)
        pc = instr.address if instr.address is not None else 0
        promoted = 0
        if addr_tag & TAG_ANY_SECRET:
            self._report(
                Channel.CACHE,
                AttackerClass.USER,
                pc,
                context.branch_addresses,
                context.depth,
                "secret-dependent pointer dereference (no bounds check)",
                variant=self._variant(context),
            )
        if not is_write and addr_tag & TAG_USER:
            # Without heap/stack layout knowledge the tool must assume every
            # user-controlled access loads a secret.
            promoted |= TAG_SECRET_USER
        return promoted
