"""Binary AddressSanitizer: shadow memory and poisoning (paper §6.2.1).

The shadow encodes the addressability of each 8-byte granule of user memory
in one shadow byte, using the classic ASan scheme:

* ``0x00`` — all eight bytes addressable,
* ``1..7`` — only the first *k* bytes addressable (partial granule),
* ``0xFF`` — the whole granule poisoned (redzone / freed memory).

Poisoning sources, mirroring the paper:

* heap redzones and freed blocks — installed by the allocator hooks in
  :class:`repro.runtime.heap.Heap`;
* stack frames — protected at *stack-frame granularity* by poisoning the
  shadow of each return-address slot while the frame is live (the paper
  cannot insert per-object stack redzones without source-level layout
  information);
* global objects — **not protected**, a documented limitation of binary
  rewriting (§6.2.1, §8) that causes Teapot to miss gadgets leaking through
  global-array overflows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.loader.layout import DEFAULT_LAYOUT, MemoryLayout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime ↔ sanitizers)
    from repro.runtime.machine import Memory

#: Shadow byte value for a fully poisoned granule.
POISONED = 0xFF
#: Granule size (bytes of user memory per shadow byte).
GRANULE = 8


class BinaryAsan:
    """ASan shadow-memory manager for a TVM process."""

    def __init__(self, memory: "Memory", layout: MemoryLayout = DEFAULT_LAYOUT,
                 protect_stack: bool = True) -> None:
        self.memory = memory
        self.layout = layout
        #: whether return-address slots are poisoned while frames are live.
        self.protect_stack = protect_stack
        #: statistics: number of failed checks observed.
        self.violations = 0

    # -- shadow addressing -------------------------------------------------------
    def shadow_address(self, addr: int) -> int:
        """Shadow byte address covering user address ``addr``."""
        return self.layout.asan_shadow_address(addr)

    # -- poisoning ------------------------------------------------------------------
    def poison_region(self, addr: int, size: int) -> None:
        """Poison ``[addr, addr+size)``.

        Whole granules are marked ``0xFF``; a leading partial granule keeps
        its first bytes addressable.
        """
        if size <= 0:
            return
        end = addr + size
        cursor = addr
        # Leading partial granule: restrict addressability to the prefix.
        if cursor % GRANULE:
            granule_start = cursor - (cursor % GRANULE)
            addressable = cursor - granule_start
            self.memory.write_shadow_byte(self.shadow_address(granule_start),
                                          addressable)
            cursor = granule_start + GRANULE
        # Whole granules map to consecutive shadow bytes: one bulk write.
        granules = (end - cursor + GRANULE - 1) // GRANULE
        if granules > 0:
            self.memory.write_shadow(self.shadow_address(cursor),
                                     b"\xff" * granules)

    def unpoison_region(self, addr: int, size: int) -> None:
        """Make ``[addr, addr+size)`` addressable again."""
        if size <= 0:
            return
        end = addr + size
        cursor = addr - (addr % GRANULE)
        full = (end - cursor) // GRANULE
        if full > 0:
            self.memory.write_shadow(self.shadow_address(cursor), bytes(full))
            cursor += full * GRANULE
        if cursor < end:
            # Trailing partial granule: first `end - cursor` bytes valid.
            self.memory.write_shadow_byte(self.shadow_address(cursor),
                                          end - cursor)

    # -- checking -----------------------------------------------------------------------
    def is_poisoned(self, addr: int, size: int) -> bool:
        """Whether any byte of ``[addr, addr+size)`` is poisoned.

        Walks shadow *granules*, not bytes: within one granule the byte
        offsets covered by the access are contiguous, so the partial-granule
        test only needs the highest covered offset.
        """
        if size <= 0:
            return False
        end = addr + size
        cursor = addr - (addr % GRANULE)
        read_shadow_byte = self.memory.read_shadow_byte
        shadow_address = self.shadow_address
        while cursor < end:
            shadow = read_shadow_byte(shadow_address(cursor))
            if shadow:
                if shadow == POISONED:
                    return True
                # Partial granule: only the first `shadow` bytes are
                # addressable; poisoned iff the highest covered offset
                # reaches past them.
                if min(cursor + GRANULE, end) - 1 - cursor >= shadow:
                    return True
            cursor += GRANULE
        return False

    def check_access(self, addr: int, size: int) -> bool:
        """Full access check: mapped user memory and not poisoned.

        Returns ``True`` when the access is valid.  Unmapped addresses count
        as violations (the speculative window can reach wild addresses that
        would fault architecturally).
        """
        if not self.layout.in_user_memory(addr):
            self.violations += 1
            return False
        if not self.memory.is_mapped(addr, size):
            self.violations += 1
            return False
        if self.is_poisoned(addr, size):
            self.violations += 1
            return False
        return True

    # -- stack frame protection ------------------------------------------------------------
    def poison_return_slot(self, addr: int) -> None:
        """Poison the 8-byte return-address slot at ``addr`` (on call)."""
        if self.protect_stack:
            if addr % GRANULE == 0:
                # Aligned single granule: the per-call fast path.
                self.memory.write_shadow_byte(self.shadow_address(addr),
                                              POISONED)
            else:
                self.poison_region(addr, 8)

    def unpoison_return_slot(self, addr: int) -> None:
        """Unpoison the return-address slot at ``addr`` (on return)."""
        if self.protect_stack:
            if addr % GRANULE == 0:
                self.memory.write_shadow_byte(self.shadow_address(addr), 0x00)
            else:
                self.unpoison_region(addr, 8)
