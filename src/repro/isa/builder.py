"""Programmatic assembly builder.

:class:`FunctionBuilder` offers a fluent interface for emitting TVM
assembly.  It is used by the mini-C code generator, by the instrumentation
passes when they synthesise helper code (e.g. trampolines), and by test
fixtures that need small hand-written functions.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Union

from repro.isa import instructions as ins
from repro.isa.assembler import AsmFunction
from repro.isa.instructions import ConditionCode, Instruction, Opcode
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import Register


class FunctionBuilder:
    """Builds an :class:`~repro.isa.assembler.AsmFunction` incrementally."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.items: List[Union[str, Instruction]] = []
        self._label_counter = itertools.count()

    # -- structural ------------------------------------------------------------
    def build(self) -> AsmFunction:
        """Finish and return the assembled function body."""
        return AsmFunction(self.name, list(self.items))

    def emit(self, instr: Instruction) -> Instruction:
        """Append an already-constructed instruction."""
        self.items.append(instr)
        return instr

    def label(self, name: Optional[str] = None) -> str:
        """Place (and return) a local label; a unique name is generated if omitted."""
        if name is None:
            name = self.fresh_label()
        self.items.append(name)
        return name

    def fresh_label(self, hint: str = "L") -> str:
        """Generate a unique local label name without placing it."""
        return f".{hint}{self.name}_{next(self._label_counter)}"

    # -- data movement ---------------------------------------------------------
    def mov(self, dst, src) -> Instruction:
        """``mov dst, src``."""
        return self.emit(ins.mov(_reg(dst), src))

    def load(self, dst, mem: Mem, size: int = 8) -> Instruction:
        """``load.<size> dst, [mem]``."""
        return self.emit(ins.load(_reg(dst), mem, size=size))

    def store(self, mem: Mem, src, size: int = 8) -> Instruction:
        """``store.<size> [mem], src``."""
        return self.emit(ins.store(mem, src, size=size))

    def lea(self, dst, mem: Mem) -> Instruction:
        """``lea dst, [mem]``."""
        return self.emit(ins.lea(_reg(dst), mem))

    def push(self, src) -> Instruction:
        """``push src``."""
        return self.emit(ins.push(src))

    def pop(self, dst) -> Instruction:
        """``pop dst``."""
        return self.emit(ins.pop(_reg(dst)))

    # -- ALU ----------------------------------------------------------------------
    def add(self, dst, src) -> Instruction:
        """``add dst, src``."""
        return self.emit(ins.alu(Opcode.ADD, _reg(dst), src))

    def sub(self, dst, src) -> Instruction:
        """``sub dst, src``."""
        return self.emit(ins.alu(Opcode.SUB, _reg(dst), src))

    def mul(self, dst, src) -> Instruction:
        """``mul dst, src``."""
        return self.emit(ins.alu(Opcode.MUL, _reg(dst), src))

    def div(self, dst, src) -> Instruction:
        """``div dst, src``."""
        return self.emit(ins.alu(Opcode.DIV, _reg(dst), src))

    def mod(self, dst, src) -> Instruction:
        """``mod dst, src``."""
        return self.emit(ins.alu(Opcode.MOD, _reg(dst), src))

    def and_(self, dst, src) -> Instruction:
        """``and dst, src``."""
        return self.emit(ins.alu(Opcode.AND, _reg(dst), src))

    def or_(self, dst, src) -> Instruction:
        """``or dst, src``."""
        return self.emit(ins.alu(Opcode.OR, _reg(dst), src))

    def xor(self, dst, src) -> Instruction:
        """``xor dst, src``."""
        return self.emit(ins.alu(Opcode.XOR, _reg(dst), src))

    def shl(self, dst, src) -> Instruction:
        """``shl dst, src``."""
        return self.emit(ins.alu(Opcode.SHL, _reg(dst), src))

    def shr(self, dst, src) -> Instruction:
        """``shr dst, src``."""
        return self.emit(ins.alu(Opcode.SHR, _reg(dst), src))

    def sar(self, dst, src) -> Instruction:
        """``sar dst, src``."""
        return self.emit(ins.alu(Opcode.SAR, _reg(dst), src))

    def neg(self, dst) -> Instruction:
        """``neg dst``."""
        return self.emit(ins.alu(Opcode.NEG, _reg(dst), None))

    def not_(self, dst) -> Instruction:
        """``not dst``."""
        return self.emit(ins.alu(Opcode.NOT, _reg(dst), None))

    # -- compares and branches -------------------------------------------------------
    def cmp(self, a, b) -> Instruction:
        """``cmp a, b``."""
        return self.emit(ins.cmp(_operand(a), b))

    def test(self, a, b) -> Instruction:
        """``test a, b``."""
        return self.emit(ins.test(_operand(a), b))

    def jmp(self, target) -> Instruction:
        """``jmp target``."""
        return self.emit(ins.jmp(target))

    def jcc(self, cc: ConditionCode, target) -> Instruction:
        """``j<cc> target``."""
        return self.emit(ins.jcc(cc, target))

    def je(self, target) -> Instruction:
        """``je target``."""
        return self.jcc(ConditionCode.EQ, target)

    def jne(self, target) -> Instruction:
        """``jne target``."""
        return self.jcc(ConditionCode.NE, target)

    def jl(self, target) -> Instruction:
        """``jl target``."""
        return self.jcc(ConditionCode.LT, target)

    def jle(self, target) -> Instruction:
        """``jle target``."""
        return self.jcc(ConditionCode.LE, target)

    def jg(self, target) -> Instruction:
        """``jg target``."""
        return self.jcc(ConditionCode.GT, target)

    def jge(self, target) -> Instruction:
        """``jge target``."""
        return self.jcc(ConditionCode.GE, target)

    def jb(self, target) -> Instruction:
        """``jb target`` (unsigned below)."""
        return self.jcc(ConditionCode.B, target)

    def jae(self, target) -> Instruction:
        """``jae target`` (unsigned at-or-above)."""
        return self.jcc(ConditionCode.AE, target)

    def ja(self, target) -> Instruction:
        """``ja target`` (unsigned above)."""
        return self.jcc(ConditionCode.A, target)

    def jbe(self, target) -> Instruction:
        """``jbe target`` (unsigned below-or-equal)."""
        return self.jcc(ConditionCode.BE, target)

    # -- calls ---------------------------------------------------------------------------
    def call(self, target) -> Instruction:
        """``call target`` (direct call to a defined function)."""
        return self.emit(ins.call(target))

    def icall(self, target) -> Instruction:
        """``icall reg`` (indirect call)."""
        return self.emit(ins.icall(_reg(target)))

    def ijmp(self, target) -> Instruction:
        """``ijmp reg|[mem]`` (indirect jump)."""
        return self.emit(ins.ijmp(target if isinstance(target, Mem) else _reg(target)))

    def ret(self) -> Instruction:
        """``ret``."""
        return self.emit(ins.ret())

    def ecall(self, name: str) -> Instruction:
        """``ecall name`` (call an external runtime function)."""
        return self.emit(ins.ecall(name))

    # -- misc ----------------------------------------------------------------------------
    def nop(self) -> Instruction:
        """``nop``."""
        return self.emit(ins.nop())

    def lfence(self) -> Instruction:
        """``lfence``."""
        return self.emit(ins.lfence())

    def halt(self) -> Instruction:
        """``halt``."""
        return self.emit(ins.halt())

    # -- common idioms ----------------------------------------------------------------------
    def prologue(self, frame_size: int = 0) -> None:
        """Emit a standard prologue: save fp, set up the frame, reserve space."""
        self.push(Reg(Register.FP))
        self.mov(Reg(Register.FP), Reg(Register.SP))
        if frame_size:
            self.sub(Reg(Register.SP), Imm(frame_size))

    def epilogue(self) -> None:
        """Emit a standard epilogue: tear down the frame and return."""
        self.mov(Reg(Register.SP), Reg(Register.FP))
        self.pop(Reg(Register.FP))
        self.ret()


def _reg(value) -> Reg:
    if isinstance(value, Reg):
        return value
    if isinstance(value, Register):
        return Reg(value)
    raise TypeError(f"expected a register, got {value!r}")


def _operand(value):
    if isinstance(value, (Reg, Imm, Mem, Label)):
        return value
    if isinstance(value, Register):
        return Reg(value)
    if isinstance(value, int) and not isinstance(value, bool):
        return Imm(value)
    raise TypeError(f"cannot convert {value!r} to an operand")
