"""Instruction definitions and semantic metadata for the TVM ISA.

An :class:`Instruction` is a mnemonic (:class:`Opcode`) plus a list of
operands and a small amount of metadata (access size for loads/stores,
condition code for conditional branches).

Two opcode families exist:

* **architectural opcodes** — what a compiler emits and a CPU executes:
  data movement, ALU, compares, control flow, and a handful of "system"
  instructions (``lfence``, ``cpuid``, ``halt``, ``ecall``).
* **instrumentation pseudo-opcodes** — what Teapot's (and the baselines')
  rewriting passes insert.  In the paper these are calls into a runtime
  support library written in C and assembly; here each pseudo-op is executed
  by the emulator's runtime and carries a documented *cycle cost* equal to
  the instruction count of the snippet the paper's runtime would emit, so
  that run-time comparisons between tools reflect the same structural
  overheads (see :mod:`repro.runtime.costs`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.isa.operands import Imm, Label, Mem, Operand, Reg


class Opcode(enum.Enum):
    """All TVM opcodes (architectural and instrumentation pseudo-ops)."""

    # -- data movement ----------------------------------------------------
    MOV = "mov"          # mov rd, rs|imm|label
    LOAD = "load"        # load rd, [mem]          (size 1/2/4/8)
    STORE = "store"      # store [mem], rs|imm     (size 1/2/4/8)
    LEA = "lea"          # lea rd, [mem]
    PUSH = "push"        # push rs|imm
    POP = "pop"          # pop rd

    # -- ALU (two-operand, dest = dest OP src; sets ZF/SF/CF/OF) ----------
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SAR = "sar"
    NOT = "not"
    NEG = "neg"

    # -- compares (set flags only) ----------------------------------------
    CMP = "cmp"
    TEST = "test"

    # -- control flow ------------------------------------------------------
    JMP = "jmp"          # jmp label
    JCC = "jcc"          # j<cc> label
    CALL = "call"        # call label
    ICALL = "icall"      # icall rs          (indirect call through register)
    IJMP = "ijmp"        # ijmp rs|[mem]     (indirect jump; jump tables)
    RET = "ret"

    # -- system -------------------------------------------------------------
    NOP = "nop"
    LFENCE = "lfence"    # serializing: terminates speculation
    CPUID = "cpuid"      # serializing: terminates speculation
    HALT = "halt"        # terminate the program
    ECALL = "ecall"      # call external/runtime function (import index)

    # -- instrumentation pseudo-ops (inserted by rewriters) ----------------
    CHECKPOINT = "checkpoint"        # Real Copy: checkpoint + enter trampoline
    TRAMP_JCC = "tramp.jcc"          # trampoline conditional jump (shadow target)
    ASAN_CHECK = "asan.check"        # Shadow Copy: shadow-memory validity check
    MEMLOG = "memlog"                # Shadow Copy: log original contents of a store
    DIFT_PROP = "dift.prop"          # Shadow Copy: per-instruction tag propagation
    DIFT_BATCH = "dift.batch"        # Real Copy: batched per-block tag propagation
    POLICY_LOAD = "policy.load"      # Shadow Copy: Kasper policy checks before a load
    POLICY_STORE = "policy.store"    # Shadow Copy: Kasper policy checks before a store
    POLICY_BRANCH = "policy.branch"  # Shadow Copy: port-contention sink check
    RESTORE_COND = "restore.cond"    # Shadow Copy: conditional restore point
    RESTORE_ALWAYS = "restore.always"  # Shadow Copy: unconditional restore point
    SPEC_REDIRECT = "spec.redirect"  # Real Copy marker block: redirect into shadow
    MARKER_NOP = "marker.nop"        # Real Copy: special marker nop (escape targets)
    GUARD_CHECK = "guard.check"      # baseline: 'if (in_simulation)' guard cost
    COV_TRACE = "cov.trace"          # normal-execution coverage trace
    COV_SPEC = "cov.spec"            # speculative coverage note (lazy flush)
    TAINT_SOURCE = "taint.source"    # mark a buffer as attacker controlled


class ConditionCode(enum.Enum):
    """Condition codes for ``jcc`` (mirroring x86 semantics on TVM flags)."""

    EQ = "e"    # ZF
    NE = "ne"   # !ZF
    LT = "l"    # SF != OF        (signed <)
    LE = "le"   # ZF or SF != OF  (signed <=)
    GT = "g"    # !ZF and SF == OF
    GE = "ge"   # SF == OF
    B = "b"     # CF              (unsigned <)
    BE = "be"   # CF or ZF
    A = "a"     # !CF and !ZF
    AE = "ae"   # !CF

    def negate(self) -> "ConditionCode":
        """The condition taken exactly when this one is not."""
        return _NEGATIONS[self]


_NEGATIONS = {
    ConditionCode.EQ: ConditionCode.NE,
    ConditionCode.NE: ConditionCode.EQ,
    ConditionCode.LT: ConditionCode.GE,
    ConditionCode.GE: ConditionCode.LT,
    ConditionCode.LE: ConditionCode.GT,
    ConditionCode.GT: ConditionCode.LE,
    ConditionCode.B: ConditionCode.AE,
    ConditionCode.AE: ConditionCode.B,
    ConditionCode.BE: ConditionCode.A,
    ConditionCode.A: ConditionCode.BE,
}

#: Opcodes that read memory.
LOAD_OPCODES = frozenset({Opcode.LOAD, Opcode.POP})
#: Opcodes that write memory.
STORE_OPCODES = frozenset({Opcode.STORE, Opcode.PUSH})
#: Architectural opcodes that transfer control.
CONTROL_FLOW_OPCODES = frozenset(
    {Opcode.JMP, Opcode.JCC, Opcode.CALL, Opcode.ICALL, Opcode.IJMP, Opcode.RET,
     Opcode.HALT}
)
#: Opcodes whose target cannot be resolved statically.
INDIRECT_OPCODES = frozenset({Opcode.ICALL, Opcode.IJMP, Opcode.RET})
#: Serializing instructions: speculation cannot proceed past them.
SERIALIZING_OPCODES = frozenset({Opcode.LFENCE, Opcode.CPUID})
#: Instrumentation pseudo-opcodes.
PSEUDO_OPCODES = frozenset(
    {
        Opcode.CHECKPOINT,
        Opcode.TRAMP_JCC,
        Opcode.ASAN_CHECK,
        Opcode.MEMLOG,
        Opcode.DIFT_PROP,
        Opcode.DIFT_BATCH,
        Opcode.POLICY_LOAD,
        Opcode.POLICY_STORE,
        Opcode.POLICY_BRANCH,
        Opcode.RESTORE_COND,
        Opcode.RESTORE_ALWAYS,
        Opcode.SPEC_REDIRECT,
        Opcode.MARKER_NOP,
        Opcode.GUARD_CHECK,
        Opcode.COV_TRACE,
        Opcode.COV_SPEC,
        Opcode.TAINT_SOURCE,
    }
)
#: ALU opcodes that write a destination register and set flags.
ALU_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.SAR,
        Opcode.NOT,
        Opcode.NEG,
    }
)
#: Opcodes that update the flags register.
FLAG_SETTING_OPCODES = ALU_OPCODES | {Opcode.CMP, Opcode.TEST}


@dataclass
class Instruction:
    """A single TVM instruction.

    Attributes:
        opcode: the instruction's :class:`Opcode`.
        operands: operand list; layout depends on the opcode.
        size: access width in bytes for loads/stores (1, 2, 4 or 8).
        cc: condition code for ``jcc``/``tramp.jcc``.
        address: absolute address once placed by the assembler/loader
            (``None`` at the assembly level).
        length: encoded length in bytes once encoded.
        comment: free-form annotation carried through assembly printing.
    """

    opcode: Opcode
    operands: List[Operand] = field(default_factory=list)
    size: int = 8
    cc: Optional[ConditionCode] = None
    address: Optional[int] = None
    length: Optional[int] = None
    comment: str = ""

    def __post_init__(self) -> None:
        if self.size not in (1, 2, 4, 8):
            raise ValueError(f"invalid access size {self.size}")
        if self.opcode in (Opcode.JCC, Opcode.TRAMP_JCC) and self.cc is None:
            raise ValueError(f"{self.opcode.value} requires a condition code")

    # -- operand accessors -------------------------------------------------
    @property
    def dest(self) -> Optional[Operand]:
        """Destination operand for register-writing instructions."""
        if self.opcode in (Opcode.MOV, Opcode.LOAD, Opcode.LEA, Opcode.POP) or (
            self.opcode in ALU_OPCODES
        ):
            return self.operands[0] if self.operands else None
        return None

    @property
    def target(self) -> Optional[Operand]:
        """Branch/call target operand, if any."""
        if self.opcode in (Opcode.JMP, Opcode.JCC, Opcode.CALL, Opcode.TRAMP_JCC,
                           Opcode.SPEC_REDIRECT, Opcode.CHECKPOINT):
            return self.operands[0] if self.operands else None
        if self.opcode in (Opcode.ICALL, Opcode.IJMP):
            return self.operands[0] if self.operands else None
        return None

    def memory_operand(self) -> Optional[Mem]:
        """The memory operand accessed by this instruction, if any."""
        for op in self.operands:
            if isinstance(op, Mem):
                return op
        return None

    def labels(self) -> Tuple[Label, ...]:
        """All symbolic label references appearing in the operands."""
        found = []
        for op in self.operands:
            if isinstance(op, Label):
                found.append(op)
            elif isinstance(op, Mem) and isinstance(op.disp, Label):
                found.append(op.disp)
        return tuple(found)

    def copy(self, **changes) -> "Instruction":
        """A shallow copy with ``changes`` applied (operands list duplicated)."""
        dup = replace(self, **changes)
        if "operands" not in changes:
            dup.operands = list(self.operands)
        return dup

    # -- pretty printing ----------------------------------------------------
    def mnemonic(self) -> str:
        """Assembly mnemonic (including condition code / size suffix)."""
        if self.opcode is Opcode.JCC:
            return f"j{self.cc.value}"
        if self.opcode is Opcode.TRAMP_JCC:
            return f"tramp.j{self.cc.value}"
        if self.opcode in (Opcode.LOAD, Opcode.STORE) and self.size != 8:
            return f"{self.opcode.value}.{self.size}"
        return self.opcode.value

    def __str__(self) -> str:
        ops = ", ".join(str(op) for op in self.operands)
        text = f"{self.mnemonic()} {ops}".rstrip()
        if self.comment:
            text = f"{text}  ; {self.comment}"
        return text


# --------------------------------------------------------------------------
# Predicates used throughout the rewriting and runtime packages.
# --------------------------------------------------------------------------

def is_load(instr: Instruction) -> bool:
    """Whether ``instr`` reads data memory."""
    if instr.opcode in LOAD_OPCODES:
        return True
    return instr.opcode is Opcode.IJMP and instr.memory_operand() is not None


def is_store(instr: Instruction) -> bool:
    """Whether ``instr`` writes data memory."""
    return instr.opcode in STORE_OPCODES


def is_memory_access(instr: Instruction) -> bool:
    """Whether ``instr`` reads or writes data memory."""
    return is_load(instr) or is_store(instr)


def is_control_flow(instr: Instruction) -> bool:
    """Whether ``instr`` is an architectural control-flow transfer."""
    return instr.opcode in CONTROL_FLOW_OPCODES


def is_branch(instr: Instruction) -> bool:
    """Whether ``instr`` is a (conditional or unconditional) branch."""
    return instr.opcode in (Opcode.JMP, Opcode.JCC, Opcode.IJMP)


def is_conditional_branch(instr: Instruction) -> bool:
    """Whether ``instr`` is a conditional branch (a misprediction victim)."""
    return instr.opcode is Opcode.JCC


def is_call(instr: Instruction) -> bool:
    """Whether ``instr`` is a direct or indirect call."""
    return instr.opcode in (Opcode.CALL, Opcode.ICALL, Opcode.ECALL)


def is_indirect_control_flow(instr: Instruction) -> bool:
    """Whether ``instr``'s target cannot be resolved statically."""
    return instr.opcode in INDIRECT_OPCODES


def is_serializing(instr: Instruction) -> bool:
    """Whether ``instr`` terminates speculative execution (lfence/cpuid)."""
    return instr.opcode in SERIALIZING_OPCODES


def is_pseudo(instr: Instruction) -> bool:
    """Whether ``instr`` is an instrumentation pseudo-op."""
    return instr.opcode in PSEUDO_OPCODES


def falls_through(instr: Instruction) -> bool:
    """Whether execution can continue to the next sequential instruction."""
    if instr.opcode in (Opcode.JMP, Opcode.IJMP, Opcode.RET, Opcode.HALT):
        return False
    return True


# --------------------------------------------------------------------------
# Convenience constructors (heavily used by the code generator and passes).
# --------------------------------------------------------------------------

def mov(dst: Reg, src) -> Instruction:
    """``mov dst, src`` where ``src`` is a register, immediate or label."""
    return Instruction(Opcode.MOV, [dst, _as_operand(src)])


def load(dst: Reg, mem: Mem, size: int = 8) -> Instruction:
    """``load.<size> dst, [mem]``."""
    return Instruction(Opcode.LOAD, [dst, mem], size=size)


def store(mem: Mem, src, size: int = 8) -> Instruction:
    """``store.<size> [mem], src``."""
    return Instruction(Opcode.STORE, [mem, _as_operand(src)], size=size)


def lea(dst: Reg, mem: Mem) -> Instruction:
    """``lea dst, [mem]``."""
    return Instruction(Opcode.LEA, [dst, mem])


def alu(opcode: Opcode, dst: Reg, src) -> Instruction:
    """Two-operand ALU instruction ``dst = dst OP src``."""
    if opcode not in ALU_OPCODES:
        raise ValueError(f"{opcode} is not an ALU opcode")
    if opcode in (Opcode.NOT, Opcode.NEG):
        return Instruction(opcode, [dst])
    return Instruction(opcode, [dst, _as_operand(src)])


def cmp(a, b) -> Instruction:
    """``cmp a, b`` (sets flags for a subsequent conditional branch)."""
    return Instruction(Opcode.CMP, [_as_operand(a), _as_operand(b)])


def test(a, b) -> Instruction:
    """``test a, b``."""
    return Instruction(Opcode.TEST, [_as_operand(a), _as_operand(b)])


def jmp(target) -> Instruction:
    """``jmp target``."""
    return Instruction(Opcode.JMP, [_as_label(target)])


def jcc(cc: ConditionCode, target) -> Instruction:
    """``j<cc> target``."""
    return Instruction(Opcode.JCC, [_as_label(target)], cc=cc)


def call(target) -> Instruction:
    """``call target``."""
    return Instruction(Opcode.CALL, [_as_label(target)])


def icall(target: Reg) -> Instruction:
    """``icall reg`` — indirect call through a register."""
    return Instruction(Opcode.ICALL, [target])


def ijmp(target) -> Instruction:
    """``ijmp reg|[mem]`` — indirect jump (e.g. through a jump table)."""
    return Instruction(Opcode.IJMP, [target])


def ret() -> Instruction:
    """``ret``."""
    return Instruction(Opcode.RET)


def push(src) -> Instruction:
    """``push src``."""
    return Instruction(Opcode.PUSH, [_as_operand(src)])


def pop(dst: Reg) -> Instruction:
    """``pop dst``."""
    return Instruction(Opcode.POP, [dst])


def ecall(name) -> Instruction:
    """``ecall name`` — call an external (imported) runtime function."""
    return Instruction(Opcode.ECALL, [_as_label(name)])


def nop() -> Instruction:
    """``nop``."""
    return Instruction(Opcode.NOP)


def halt() -> Instruction:
    """``halt`` — terminate the program."""
    return Instruction(Opcode.HALT)


def lfence() -> Instruction:
    """``lfence`` — serializing barrier."""
    return Instruction(Opcode.LFENCE)


def _as_operand(value) -> Operand:
    if isinstance(value, (Reg, Imm, Mem, Label)):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return Imm(value)
    if isinstance(value, str):
        return Label(value)
    raise TypeError(f"cannot convert {value!r} to an operand")


def _as_label(value) -> Operand:
    if isinstance(value, (Label, Reg)):
        return value
    if isinstance(value, str):
        return Label(value)
    if isinstance(value, int) and not isinstance(value, bool):
        return Imm(value)
    raise TypeError(f"cannot convert {value!r} to a branch target")
