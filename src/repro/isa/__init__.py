"""TVM: the synthetic 64-bit instruction set used as the binary substrate.

The paper operates on x86-64 ELF binaries.  This reproduction substitutes a
compact RISC-ish ISA ("TVM") that preserves every property Teapot's analysis
depends on:

* conditional branches with x86-like condition codes (mispredictable),
* loads and stores with ``base + index*scale + disp`` addressing and
  1/2/4/8-byte access widths,
* direct and indirect calls/jumps, returns, and a stack/frame ABI,
* a flat byte-addressed virtual address space,
* a byte-level encoding so binaries really are byte blobs that must be
  disassembled before they can be rewritten.

The package is organised as:

``registers``
    architectural register file and calling convention.
``operands``
    operand model (registers, immediates, memory addressing, labels).
``instructions``
    the instruction class, mnemonic tables and semantic metadata.
``encoding``
    byte encoder/decoder for instructions.
``assembler``
    two-pass assembler turning assembly-level functions into a ``TELF``
    binary (see :mod:`repro.loader`).
``builder``
    a programmatic assembly builder used by the mini-C code generator and
    by hand-written fixtures.
"""

from repro.isa.registers import (
    Register,
    GPR_NAMES,
    ARG_REGISTERS,
    CALLEE_SAVED,
    CALLER_SAVED,
    RETURN_REGISTER,
    STACK_POINTER,
    FRAME_POINTER,
)
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.instructions import (
    ConditionCode,
    Instruction,
    Opcode,
    is_branch,
    is_call,
    is_conditional_branch,
    is_control_flow,
    is_indirect_control_flow,
    is_load,
    is_memory_access,
    is_pseudo,
    is_serializing,
    is_store,
)
from repro.isa.encoding import decode_instruction, encode_instruction
from repro.isa.assembler import AsmFunction, AsmProgram, Assembler, AssemblerError
from repro.isa.builder import FunctionBuilder

__all__ = [
    "Register",
    "GPR_NAMES",
    "ARG_REGISTERS",
    "CALLEE_SAVED",
    "CALLER_SAVED",
    "RETURN_REGISTER",
    "STACK_POINTER",
    "FRAME_POINTER",
    "Imm",
    "Label",
    "Mem",
    "Reg",
    "ConditionCode",
    "Instruction",
    "Opcode",
    "is_branch",
    "is_call",
    "is_conditional_branch",
    "is_control_flow",
    "is_indirect_control_flow",
    "is_load",
    "is_memory_access",
    "is_pseudo",
    "is_serializing",
    "is_store",
    "decode_instruction",
    "encode_instruction",
    "AsmFunction",
    "AsmProgram",
    "Assembler",
    "AssemblerError",
    "FunctionBuilder",
]
