"""Operand model of the TVM ISA.

Instructions reference four kinds of operands:

:class:`Reg`
    a general-purpose register.
:class:`Imm`
    a 64-bit signed immediate constant.
:class:`Mem`
    a memory reference with the x86-style effective address
    ``base + index * scale + disp``.
:class:`Label`
    a symbolic code or data reference.  Labels exist at the assembly level;
    the assembler resolves them to absolute addresses before encoding, and
    the disassembler re-introduces them during symbolization so the rewriter
    can re-layout code freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.isa.registers import Register


@dataclass(frozen=True)
class Reg:
    """A register operand."""

    reg: Register

    def __post_init__(self) -> None:
        if not isinstance(self.reg, Register):
            object.__setattr__(self, "reg", Register(self.reg))

    def __str__(self) -> str:
        return self.reg.asm_name


@dataclass(frozen=True)
class Imm:
    """A 64-bit signed immediate operand.

    Values are stored as Python ints and wrapped to 64-bit two's complement
    by the encoder and by the emulator's arithmetic.
    """

    value: int

    def __post_init__(self) -> None:
        if not isinstance(self.value, int) or isinstance(self.value, bool):
            raise TypeError(f"immediate must be an int, got {type(self.value).__name__}")

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Label:
    """A symbolic reference to a code or data location.

    ``name`` is the symbol name; an optional ``addend`` produces references
    of the form ``symbol + constant`` (used for field accesses into global
    objects and for jump-table entries).
    """

    name: str
    addend: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("label name must be non-empty")

    def with_addend(self, delta: int) -> "Label":
        """Return a copy of this label with ``delta`` added to the addend."""
        return Label(self.name, self.addend + delta)

    def __str__(self) -> str:
        if self.addend:
            sign = "+" if self.addend >= 0 else "-"
            return f"{self.name}{sign}{abs(self.addend)}"
        return self.name


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``[base + index*scale + disp]``.

    Any of the components may be omitted.  ``disp`` may alternatively be a
    :class:`Label`, in which case the assembler resolves it to the symbol's
    absolute address (this is how globals are addressed).
    """

    base: Optional[Register] = None
    index: Optional[Register] = None
    scale: int = 1
    disp: Union[int, Label] = 0

    def __post_init__(self) -> None:
        if self.base is not None and not isinstance(self.base, Register):
            object.__setattr__(self, "base", Register(self.base))
        if self.index is not None and not isinstance(self.index, Register):
            object.__setattr__(self, "index", Register(self.index))
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"scale must be 1, 2, 4 or 8, got {self.scale}")
        if not isinstance(self.disp, (int, Label)) or isinstance(self.disp, bool):
            raise TypeError("disp must be an int or a Label")

    @property
    def is_frame_relative_constant(self) -> bool:
        """Whether this is an ``sp``/``fp`` + constant access with no index.

        These accesses are allowlisted from ASan checks (paper §6.2.1).
        """
        return (
            self.base is not None
            and self.base.is_frame_relative
            and self.index is None
            and isinstance(self.disp, int)
        )

    @property
    def has_symbolic_disp(self) -> bool:
        """Whether the displacement is a symbolic label."""
        return isinstance(self.disp, Label)

    def registers(self) -> tuple:
        """All registers participating in the effective address."""
        regs = []
        if self.base is not None:
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        return tuple(regs)

    def with_disp(self, disp: Union[int, Label]) -> "Mem":
        """Return a copy of this operand with a different displacement."""
        return Mem(self.base, self.index, self.scale, disp)

    def __str__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(self.base.asm_name)
        if self.index is not None:
            if self.scale != 1:
                parts.append(f"{self.index.asm_name}*{self.scale}")
            else:
                parts.append(self.index.asm_name)
        if isinstance(self.disp, Label):
            parts.append(str(self.disp))
        elif self.disp or not parts:
            parts.append(str(self.disp))
        return "[" + " + ".join(parts) + "]"


#: Union type of everything that can appear as an instruction operand.
Operand = Union[Reg, Imm, Mem, Label]
