"""Architectural register file and calling convention of the TVM ISA.

TVM has sixteen 64-bit general purpose registers, ``r0`` .. ``r15``.  Two of
them have dedicated roles mirroring x86-64's ``rsp``/``rbp``:

* ``r14`` is the stack pointer (``sp``),
* ``r15`` is the frame pointer (``fp``).

The calling convention (used by the mini-C compiler and by the runtime's
external-call shims) is:

* arguments are passed in ``r1`` .. ``r5`` (spill to stack beyond five),
* the return value is placed in ``r0``,
* ``r0`` .. ``r11`` are caller-saved, ``r12``/``r13`` and ``fp`` are
  callee-saved,
* the stack grows downwards and ``call`` pushes the return address.

Flags are modelled as a separate architectural flags register with the four
x86 condition bits Teapot's policy cares about (``ZF``, ``SF``, ``CF``,
``OF``); see :class:`repro.runtime.machine.Flags`.
"""

from __future__ import annotations

import enum
from typing import Tuple


class Register(enum.IntEnum):
    """The sixteen TVM general-purpose registers.

    The integer value of each member is the register number used by the
    byte-level encoding.
    """

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4
    R5 = 5
    R6 = 6
    R7 = 7
    R8 = 8
    R9 = 9
    R10 = 10
    R11 = 11
    R12 = 12
    R13 = 13
    SP = 14
    FP = 15

    @property
    def is_stack_pointer(self) -> bool:
        """Whether this register is the architectural stack pointer."""
        return self is Register.SP

    @property
    def is_frame_pointer(self) -> bool:
        """Whether this register is the architectural frame pointer."""
        return self is Register.FP

    @property
    def is_frame_relative(self) -> bool:
        """Whether accesses based off this register are frame-relative.

        Teapot allowlists ASan checks for ``rsp``/``rbp`` + constant-offset
        accesses (paper section 6.2.1); the TVM equivalents are ``sp`` and
        ``fp``.
        """
        return self in (Register.SP, Register.FP)

    @classmethod
    def from_name(cls, name: str) -> "Register":
        """Parse a register from its assembly name (``r3``, ``sp``, ``fp``)."""
        key = name.strip().lower()
        if key in _NAME_TO_REGISTER:
            return _NAME_TO_REGISTER[key]
        raise ValueError(f"unknown register name: {name!r}")

    @property
    def asm_name(self) -> str:
        """Canonical assembly spelling of the register."""
        if self is Register.SP:
            return "sp"
        if self is Register.FP:
            return "fp"
        return f"r{int(self)}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.asm_name


#: Canonical assembly names for every register, in encoding order.
GPR_NAMES: Tuple[str, ...] = tuple(Register(i).asm_name for i in range(16))

_NAME_TO_REGISTER = {reg.asm_name: reg for reg in Register}
_NAME_TO_REGISTER.update({f"r{int(Register.SP)}": Register.SP,
                          f"r{int(Register.FP)}": Register.FP})

#: Registers used for passing the first five integer arguments.
ARG_REGISTERS: Tuple[Register, ...] = (
    Register.R1,
    Register.R2,
    Register.R3,
    Register.R4,
    Register.R5,
)

#: Register holding a function's return value.
RETURN_REGISTER: Register = Register.R0

#: The architectural stack pointer.
STACK_POINTER: Register = Register.SP

#: The architectural frame pointer.
FRAME_POINTER: Register = Register.FP

#: Registers a callee must preserve.
CALLEE_SAVED: Tuple[Register, ...] = (Register.R12, Register.R13, Register.FP)

#: Registers a caller must assume are clobbered across a call.
CALLER_SAVED: Tuple[Register, ...] = tuple(
    Register(i) for i in range(12)
)

#: Registers the register allocator may freely use for temporaries.
SCRATCH_REGISTERS: Tuple[Register, ...] = (
    Register.R6,
    Register.R7,
    Register.R8,
    Register.R9,
    Register.R10,
    Register.R11,
)
