"""Byte-level encoding and decoding of TVM instructions.

The encoding is a simple self-describing variable-length format:

``[opcode:1] [info:1] [noperands:1] (operand)*``

where ``info`` packs the access-size (2 bits, log2 of 1/2/4/8) and the
condition code (4 bits; ``0xF`` means "no condition code"), and each operand
is a one-byte tag followed by a fixed payload:

* ``0x01`` register — 1 byte register number.
* ``0x02`` immediate — 8 bytes signed little-endian.
* ``0x03`` memory — 1 flag byte (bit0: has base, bit1: has index,
  bits 2-3: log2(scale)), optional base byte, optional index byte,
  8-byte signed displacement.

Symbolic :class:`~repro.isa.operands.Label` operands cannot be encoded; the
assembler resolves them to immediates (and records relocations in the binary
so the disassembler's symbolization pass can recover them).  Attempting to
encode an unresolved label raises :class:`EncodingError`.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.isa.instructions import ConditionCode, Instruction, Opcode
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import Register


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


#: Stable opcode numbering used by the byte encoding.
_OPCODE_LIST = list(Opcode)
_OPCODE_TO_ID = {op: i for i, op in enumerate(_OPCODE_LIST)}
_ID_TO_OPCODE = {i: op for i, op in enumerate(_OPCODE_LIST)}

_CC_LIST = list(ConditionCode)
_CC_TO_ID = {cc: i for i, cc in enumerate(_CC_LIST)}
_ID_TO_CC = {i: cc for i, cc in enumerate(_CC_LIST)}
_NO_CC = 0xF

_TAG_REG = 0x01
_TAG_IMM = 0x02
_TAG_MEM = 0x03

_SIZE_TO_BITS = {1: 0, 2: 1, 4: 2, 8: 3}
_BITS_TO_SIZE = {v: k for k, v in _SIZE_TO_BITS.items()}

#: Two's-complement mask for 64-bit values.
MASK64 = (1 << 64) - 1


def _to_signed64(value: int) -> int:
    value &= MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def encode_instruction(instr: Instruction) -> bytes:
    """Encode a single instruction to bytes.

    Raises:
        EncodingError: if the instruction still contains symbolic labels.
    """
    out = bytearray()
    out.append(_OPCODE_TO_ID[instr.opcode])
    cc_bits = _CC_TO_ID[instr.cc] if instr.cc is not None else _NO_CC
    info = _SIZE_TO_BITS[instr.size] | (cc_bits << 2)
    out.append(info)
    out.append(len(instr.operands))
    for op in instr.operands:
        if isinstance(op, Reg):
            out.append(_TAG_REG)
            out.append(int(op.reg))
        elif isinstance(op, Imm):
            out.append(_TAG_IMM)
            out += struct.pack("<q", _to_signed64(op.value))
        elif isinstance(op, Mem):
            if isinstance(op.disp, Label):
                raise EncodingError(
                    f"cannot encode unresolved label {op.disp} in {instr}"
                )
            out.append(_TAG_MEM)
            flags = 0
            if op.base is not None:
                flags |= 0x01
            if op.index is not None:
                flags |= 0x02
            flags |= _SIZE_TO_BITS[op.scale] << 2
            out.append(flags)
            if op.base is not None:
                out.append(int(op.base))
            if op.index is not None:
                out.append(int(op.index))
            out += struct.pack("<q", _to_signed64(op.disp))
        elif isinstance(op, Label):
            raise EncodingError(f"cannot encode unresolved label {op} in {instr}")
        else:  # pragma: no cover - defensive
            raise EncodingError(f"unsupported operand {op!r}")
    return bytes(out)


def decode_instruction(data: bytes, offset: int = 0) -> Tuple[Instruction, int]:
    """Decode one instruction from ``data`` starting at ``offset``.

    Returns:
        ``(instruction, length)`` where ``length`` is the number of bytes
        consumed.  The returned instruction's ``length`` field is populated.

    Raises:
        EncodingError: on truncated or malformed input.
    """
    start = offset
    try:
        opcode_id = data[offset]
        info = data[offset + 1]
        noperands = data[offset + 2]
    except IndexError as exc:
        raise EncodingError(f"truncated instruction at offset {start}") from exc
    if opcode_id not in _ID_TO_OPCODE:
        raise EncodingError(f"unknown opcode id {opcode_id} at offset {start}")
    opcode = _ID_TO_OPCODE[opcode_id]
    size = _BITS_TO_SIZE[info & 0x3]
    cc_bits = (info >> 2) & 0xF
    cc = None if cc_bits == _NO_CC else _ID_TO_CC.get(cc_bits)
    offset += 3

    operands = []
    for _ in range(noperands):
        if offset >= len(data):
            raise EncodingError(f"truncated operand list at offset {start}")
        tag = data[offset]
        offset += 1
        try:
            if tag == _TAG_REG:
                operands.append(Reg(Register(data[offset])))
                offset += 1
            elif tag == _TAG_IMM:
                (value,) = struct.unpack_from("<q", data, offset)
                operands.append(Imm(value))
                offset += 8
            elif tag == _TAG_MEM:
                flags = data[offset]
                offset += 1
                base = None
                index = None
                if flags & 0x01:
                    base = Register(data[offset])
                    offset += 1
                if flags & 0x02:
                    index = Register(data[offset])
                    offset += 1
                scale = _BITS_TO_SIZE[(flags >> 2) & 0x3]
                (disp,) = struct.unpack_from("<q", data, offset)
                offset += 8
                operands.append(Mem(base=base, index=index, scale=scale, disp=disp))
            else:
                raise EncodingError(f"unknown operand tag {tag:#x} at offset {start}")
        except (IndexError, struct.error) as exc:
            raise EncodingError(f"truncated operand at offset {start}") from exc

    length = offset - start
    instr = Instruction(opcode, operands, size=size, cc=cc, length=length)
    return instr, length


def encoded_length(instr: Instruction) -> int:
    """Length in bytes ``instr`` will occupy once encoded.

    Symbolic labels are assumed to resolve to 8-byte immediates (which they
    always do), so this is usable for layout before label resolution.
    """
    length = 3
    for op in instr.operands:
        if isinstance(op, Reg):
            length += 2
        elif isinstance(op, (Imm, Label)):
            length += 9
        elif isinstance(op, Mem):
            length += 2  # tag + flags
            if op.base is not None:
                length += 1
            if op.index is not None:
                length += 1
            length += 8
        else:  # pragma: no cover - defensive
            raise EncodingError(f"unsupported operand {op!r}")
    return length
