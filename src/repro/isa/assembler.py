"""Two-pass assembler: assembly-level programs to TELF binaries.

The assembler consumes an :class:`AsmProgram` — an ordered list of
:class:`AsmFunction` (each a list of local labels and instructions) plus
global data objects — lays everything out in the virtual address space,
resolves symbolic labels to absolute addresses, records relocations for
materialised code/data pointers, encodes instructions to bytes and emits a
:class:`~repro.loader.binary_format.TelfBinary`.

This is the "compile side" of the reassembleable-disassembly loop: the
rewriter produces a new ``AsmProgram`` (with different layout after
instrumentation is inserted) and runs it back through the same assembler.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.isa.encoding import encode_instruction, encoded_length
from repro.isa.instructions import Instruction, Opcode
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.loader.binary_format import (
    DataObject,
    Relocation,
    RelocationKind,
    Section,
    Symbol,
    SymbolKind,
    TelfBinary,
)
from repro.loader.layout import DEFAULT_LAYOUT, MemoryLayout


class AssemblerError(ValueError):
    """Raised when a program cannot be assembled (e.g. undefined label)."""


#: Items inside a function body: a local label (string) or an instruction.
AsmItem = Union[str, Instruction]


@dataclass
class AsmFunction:
    """An assembly-level function: a name and a list of labels/instructions."""

    name: str
    items: List[AsmItem] = field(default_factory=list)

    def instructions(self) -> List[Instruction]:
        """Only the instructions, in order."""
        return [item for item in self.items if isinstance(item, Instruction)]

    def labels(self) -> List[str]:
        """Only the local label names, in order of appearance."""
        return [item for item in self.items if isinstance(item, str)]

    def append(self, item: AsmItem) -> None:
        """Append a label or an instruction to the body."""
        self.items.append(item)


@dataclass
class AsmProgram:
    """A complete assembly-level program."""

    functions: List[AsmFunction] = field(default_factory=list)
    data_objects: List[DataObject] = field(default_factory=list)
    entry: str = "main"
    extra_imports: List[str] = field(default_factory=list)
    metadata: Dict[str, str] = field(default_factory=dict)

    def function(self, name: str) -> AsmFunction:
        """Look up a function by name.

        Raises:
            KeyError: if the function does not exist.
        """
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")

    def has_function(self, name: str) -> bool:
        """Whether a function with ``name`` exists."""
        return any(f.name == name for f in self.functions)

    def add_function(self, func: AsmFunction) -> None:
        """Add a function, rejecting duplicate names."""
        if self.has_function(func.name):
            raise AssemblerError(f"duplicate function {func.name!r}")
        self.functions.append(func)

    def add_data(self, obj: DataObject) -> None:
        """Add a global data object, rejecting duplicate names."""
        if any(d.name == obj.name for d in self.data_objects):
            raise AssemblerError(f"duplicate data object {obj.name!r}")
        self.data_objects.append(obj)


def _align(value: int, alignment: int) -> int:
    if alignment <= 1:
        return value
    return (value + alignment - 1) // alignment * alignment


#: Opcodes whose label operand is a code target (not a materialised pointer).
_BRANCH_TARGET_OPCODES = frozenset(
    {
        Opcode.JMP,
        Opcode.JCC,
        Opcode.CALL,
        Opcode.TRAMP_JCC,
        Opcode.SPEC_REDIRECT,
        Opcode.CHECKPOINT,
    }
)


class Assembler:
    """Turns :class:`AsmProgram` instances into :class:`TelfBinary` images."""

    def __init__(self, layout: Optional[MemoryLayout] = None) -> None:
        self.layout = layout or DEFAULT_LAYOUT

    # -- public API ---------------------------------------------------------
    def assemble(self, program: AsmProgram) -> TelfBinary:
        """Assemble a program into a binary image.

        Raises:
            AssemblerError: on undefined labels, duplicate definitions or
                layout overflow.
        """
        imports = self._collect_imports(program)
        data_addresses, rodata_bytes, data_bytes, data_symbols, data_relocs = (
            self._layout_data(program)
        )
        func_addresses, label_addresses, func_sizes = self._layout_text(program)

        symbol_addresses: Dict[str, int] = {}
        symbol_addresses.update(data_addresses)
        symbol_addresses.update(func_addresses)

        text_bytes, code_relocs = self._resolve_and_encode(
            program, imports, symbol_addresses, label_addresses
        )

        sections = {
            ".text": Section(".text", self.layout.text_base, bytes(text_bytes)),
            ".rodata": Section(".rodata", self.layout.rodata_base, bytes(rodata_bytes)),
            ".data": Section(".data", self.layout.data_base, bytes(data_bytes)),
        }

        symbols: List[Symbol] = []
        for func in program.functions:
            symbols.append(
                Symbol(
                    name=func.name,
                    address=func_addresses[func.name],
                    size=func_sizes[func.name],
                    kind=SymbolKind.FUNCTION,
                    section=".text",
                )
            )
        symbols.extend(data_symbols)

        if not any(s.name == program.entry for s in symbols):
            raise AssemblerError(f"entry function {program.entry!r} is not defined")

        relocations = data_relocs + code_relocs
        binary = TelfBinary(
            sections=sections,
            symbols=symbols,
            imports=imports,
            relocations=relocations,
            entry=program.entry,
            layout=self.layout,
            metadata=dict(program.metadata),
        )
        return binary

    # -- pass 0: imports -------------------------------------------------------
    def _collect_imports(self, program: AsmProgram) -> List[str]:
        names: List[str] = list(program.extra_imports)
        defined = {f.name for f in program.functions}
        for func in program.functions:
            for instr in func.instructions():
                if instr.opcode is Opcode.ECALL and instr.operands:
                    target = instr.operands[0]
                    if isinstance(target, Label):
                        if target.name in defined:
                            raise AssemblerError(
                                f"ecall target {target.name!r} is a defined function; "
                                "use call instead"
                            )
                        if target.name not in names:
                            names.append(target.name)
        return names

    # -- pass 1: data layout ------------------------------------------------------
    def _layout_data(self, program: AsmProgram):
        rodata = bytearray()
        data = bytearray()
        addresses: Dict[str, int] = {}
        symbols: List[Symbol] = []
        relocations: List[Relocation] = []

        for obj in program.data_objects:
            if obj.section == ".rodata":
                buf, base = rodata, self.layout.rodata_base
            elif obj.section == ".data":
                buf, base = data, self.layout.data_base
            else:
                raise AssemblerError(f"unknown data section {obj.section!r}")
            offset = _align(len(buf), obj.align)
            buf.extend(b"\x00" * (offset - len(buf)))
            address = base + offset
            if obj.name in addresses:
                raise AssemblerError(f"duplicate data object {obj.name!r}")
            addresses[obj.name] = address
            buf.extend(obj.data)
            symbols.append(
                Symbol(obj.name, address, obj.size, SymbolKind.OBJECT, obj.section)
            )

        if self.layout.rodata_base + len(rodata) > self.layout.data_base:
            raise AssemblerError(".rodata overflows into .data")
        if self.layout.data_base + len(data) > self.layout.heap_base:
            raise AssemblerError(".data overflows into the heap region")

        # Pointer slots can refer to functions as well, whose addresses are
        # not known yet; record them and patch in _resolve_and_encode via a
        # second visit.  To keep it simple we return the raw objects and do
        # the patching here with a deferred list handled by the caller —
        # function addresses are computed before encoding, so we patch lazily
        # in assemble() by re-running this step.  Instead, we store the slot
        # info on the relocation list with addend and patch once addresses
        # are known (see _patch_data_pointers).
        self._pending_pointer_slots = []
        for obj in program.data_objects:
            for (slot_offset, symbol_name, addend) in obj.pointer_slots:
                slot_addr = addresses[obj.name] + slot_offset
                self._pending_pointer_slots.append(
                    (obj.section, slot_addr, symbol_name, addend)
                )
                relocations.append(
                    Relocation(slot_addr, symbol_name, addend, RelocationKind.ABS64_DATA)
                )
        self._rodata_buf = rodata
        self._data_buf = data
        return addresses, rodata, data, symbols, relocations

    # -- pass 2: text layout ------------------------------------------------------
    def _layout_text(self, program: AsmProgram):
        func_addresses: Dict[str, int] = {}
        label_addresses: Dict[str, Dict[str, int]] = {}
        func_sizes: Dict[str, int] = {}
        cursor = self.layout.text_base
        seen_local: Dict[str, int]

        for func in program.functions:
            if func.name in func_addresses:
                raise AssemblerError(f"duplicate function {func.name!r}")
            func_addresses[func.name] = cursor
            seen_local = {}
            start = cursor
            for item in func.items:
                if isinstance(item, str):
                    if item in seen_local:
                        raise AssemblerError(
                            f"duplicate label {item!r} in function {func.name!r}"
                        )
                    seen_local[item] = cursor
                else:
                    cursor += encoded_length(item)
            label_addresses[func.name] = seen_local
            func_sizes[func.name] = cursor - start

        if cursor > self.layout.rodata_base:
            raise AssemblerError(".text overflows into .rodata")
        return func_addresses, label_addresses, func_sizes

    # -- pass 3: resolve labels and encode -----------------------------------------
    def _resolve_and_encode(
        self,
        program: AsmProgram,
        imports: List[str],
        symbol_addresses: Dict[str, int],
        label_addresses: Dict[str, Dict[str, int]],
    ):
        # Patch data pointer slots now that function addresses are known.
        self._patch_data_pointers(symbol_addresses, label_addresses)

        text = bytearray()
        relocations: List[Relocation] = []
        cursor = self.layout.text_base

        for func in program.functions:
            local = label_addresses[func.name]
            for item in func.items:
                if isinstance(item, str):
                    continue
                instr = item
                resolved = self._resolve_instruction(
                    instr, func.name, imports, symbol_addresses, local, cursor,
                    relocations, label_addresses,
                )
                encoded = encode_instruction(resolved)
                expected = encoded_length(instr)
                if len(encoded) != expected:
                    raise AssemblerError(
                        f"layout mismatch for {instr}: planned {expected} bytes, "
                        f"encoded {len(encoded)}"
                    )
                instr.address = cursor
                instr.length = len(encoded)
                text.extend(encoded)
                cursor += len(encoded)
        return text, relocations

    def _patch_data_pointers(
        self,
        symbol_addresses: Dict[str, int],
        label_addresses: Dict[str, Dict[str, int]],
    ) -> None:
        for section, slot_addr, symbol_name, addend in self._pending_pointer_slots:
            base_addr = self._lookup_qualified(
                symbol_name, symbol_addresses, label_addresses
            )
            if base_addr is None:
                raise AssemblerError(
                    f"data pointer slot refers to undefined symbol {symbol_name!r}"
                )
            value = base_addr + addend
            if section == ".rodata":
                buf, base = self._rodata_buf, self.layout.rodata_base
            else:
                buf, base = self._data_buf, self.layout.data_base
            offset = slot_addr - base
            buf[offset:offset + 8] = struct.pack("<Q", value & ((1 << 64) - 1))

    @staticmethod
    def _lookup_qualified(
        name: str,
        symbol_addresses: Dict[str, int],
        label_addresses: Dict[str, Dict[str, int]],
    ) -> Optional[int]:
        """Resolve a global symbol or a ``function::local_label`` reference."""
        if "::" in name:
            func_name, _, local_label = name.partition("::")
            locals_map = label_addresses.get(func_name)
            if locals_map is not None and local_label in locals_map:
                return locals_map[local_label]
            return None
        return symbol_addresses.get(name)

    def _resolve_label(
        self,
        label: Label,
        func_name: str,
        symbol_addresses: Dict[str, int],
        local: Dict[str, int],
        label_addresses: Optional[Dict[str, Dict[str, int]]] = None,
    ) -> int:
        if "::" in label.name and label_addresses is not None:
            resolved = self._lookup_qualified(
                label.name, symbol_addresses, label_addresses
            )
            if resolved is not None:
                return resolved + label.addend
        if label.name in local:
            return local[label.name] + label.addend
        if label.name in symbol_addresses:
            return symbol_addresses[label.name] + label.addend
        raise AssemblerError(
            f"undefined label {label.name!r} referenced in function {func_name!r}"
        )

    def _resolve_instruction(
        self,
        instr: Instruction,
        func_name: str,
        imports: List[str],
        symbol_addresses: Dict[str, int],
        local: Dict[str, int],
        address: int,
        relocations: List[Relocation],
        label_addresses: Optional[Dict[str, Dict[str, int]]] = None,
    ) -> Instruction:
        new_operands = []
        for op in instr.operands:
            if isinstance(op, Label):
                if instr.opcode is Opcode.ECALL:
                    new_operands.append(Imm(imports.index(op.name)))
                    continue
                value = self._resolve_label(
                    op, func_name, symbol_addresses, local, label_addresses
                )
                new_operands.append(Imm(value))
                if instr.opcode not in _BRANCH_TARGET_OPCODES:
                    # A materialised code/data pointer: record a relocation so
                    # symbolization can recover the symbolic reference.
                    relocations.append(
                        Relocation(address, op.name, op.addend,
                                   RelocationKind.ABS64_CODE)
                    )
            elif isinstance(op, Mem) and isinstance(op.disp, Label):
                value = self._resolve_label(
                    op.disp, func_name, symbol_addresses, local, label_addresses
                )
                new_operands.append(op.with_disp(value))
                relocations.append(
                    Relocation(address, op.disp.name, op.disp.addend,
                               RelocationKind.ABS64_CODE)
                )
            else:
                new_operands.append(op)
        return instr.copy(operands=new_operands)
