"""Mitigation synthesis passes: fences and SLH-style load masking.

Three strategies, all ordinary :class:`~repro.rewriting.passes.RewritePass`
implementations over the *uninstrumented* module, so a hardened binary goes
back through the same reassembler — and can afterwards be re-instrumented
and re-fuzzed to verify the mitigation:

:class:`FenceAtSitePass`
    inserts an ``lfence`` immediately ahead of each reported gadget's
    vulnerable load/store/branch.  Speculation reaching the site hits the
    serializing instruction first, so the transmitting access can never
    execute transiently (the targeted-patching workflow the paper's ranked
    report output is meant to drive).

:class:`MaskLoadPass`
    speculative-load-hardening flavour: for every conditional branch that
    dominates a reported load, the branch predicate is re-materialised as
    an all-ones/all-zeroes mask (``(a - b) >> 63`` style, signed
    compares) and accumulated into a speculation predicate slot; the
    reported load's index register is ANDed with the predicate, so a
    misspeculated execution accesses element 0 of the array instead of the
    attacker-chosen out-of-bounds address.  Sites the mask cannot provably
    cover (branch sites, loads without an index register, unsupported
    compare shapes) fall back to a targeted fence.

:class:`FenceAllBranchesPass`
    the fence-everything baseline (SpecFuzz §2.1 mitigation discussion):
    an ``lfence`` at the top of both successors of every conditional
    branch, killing every speculative window at maximal run-time cost.
    This is the overhead yardstick the targeted strategies must beat.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.disasm.ir import BasicBlock, IRFunction, Module
from repro.hardening.sites import GadgetSite, locate_site
from repro.isa.instructions import (
    ConditionCode,
    Instruction,
    Opcode,
    is_load,
    is_pseudo,
    lfence,
    load,
    mov,
    pop,
    push,
    store,
)
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import Register
from repro.loader.binary_format import DataObject
from repro.plugins import PASS_REGISTRY, UnknownPluginError, register_pass
from repro.rewriting.passes import RewritePass

#: Name of the speculation predicate slot :class:`MaskLoadPass` allocates.
PRED_SYMBOL = "__slh_pred__"

#: The three built-in mitigation strategies, in CLI/matrix order.  The
#: full (built-in + plugin) set lives in
#: :data:`repro.plugins.PASS_REGISTRY`; see :func:`strategy_names`.
STRATEGIES = ("fence", "mask", "fence-all")


def strategy_names() -> Tuple[str, ...]:
    """Every registered strategy name (built-ins plus ``@register_pass``)."""
    return tuple(PASS_REGISTRY.names())

#: Condition codes the mask builder can re-materialise branchlessly.
#: ``(x, y, complement)``: mask = all-ones iff ``x < y`` (signed,
#: overflow-exact), complemented if asked — all signed compares; unsigned
#: and equality shapes fall back to a fence.
_MASKABLE_CCS: Dict[ConditionCode, Tuple[int, int, bool]] = {
    ConditionCode.LT: (0, 1, False),   # a <  b  ->   lt(a, b)
    ConditionCode.GE: (0, 1, True),    # a >= b  ->  ~lt(a, b)
    ConditionCode.GT: (1, 0, False),   # a >  b  ->   lt(b, a)
    ConditionCode.LE: (1, 0, True),    # a <= b  ->  ~lt(b, a)
}


class HardeningError(RuntimeError):
    """Raised when a mitigation cannot be synthesised at all."""


def strategy_pass(strategy: str, sites: Sequence[GadgetSite] = ()) -> RewritePass:
    """Instantiate the pass implementing a named strategy.

    Strategies are plugins: the factory registered under ``strategy`` in
    :data:`repro.plugins.PASS_REGISTRY` is called with the gadget-site
    sequence.  Unknown names raise :class:`HardeningError` listing every
    registered strategy.
    """
    try:
        factory = PASS_REGISTRY.get(strategy)
    except UnknownPluginError as error:
        raise HardeningError(str(error)) from None
    return factory(sites)


def _fence(note: str) -> Instruction:
    instr = lfence()
    instr.comment = note
    return instr


def _scratch_registers(count: int, excluded: Set[Register]) -> List[Register]:
    """Pick ``count`` registers to borrow (they are push/pop preserved)."""
    picks: List[Register] = []
    for reg in (Register.R11, Register.R10, Register.R9, Register.R8,
                Register.R13, Register.R12, Register.R7, Register.R6,
                Register.R5, Register.R4, Register.R3, Register.R2,
                Register.R1, Register.R0):
        if reg in excluded:
            continue
        picks.append(reg)
        if len(picks) == count:
            return picks
    raise HardeningError("no scratch registers available for masking")


class _SiteTargetedPass(RewritePass):
    """Shared plumbing for passes driven by a list of gadget sites."""

    def __init__(self, sites: Sequence[GadgetSite]) -> None:
        super().__init__()
        self.sites: List[GadgetSite] = list(sites)
        #: per-site outcome ("fenced", "masked", "mask-fallback-fence",
        #: "unresolved"), filled in by :meth:`run`.
        self.site_outcomes: Dict[GadgetSite, str] = {}

    def _resolve_all(self, module: Module):
        """Locate every site *before* any insertion.

        Site ordinals refer to the unmodified module; inserting even one
        architectural instruction shifts the ordinals behind it, so all
        lookups must happen up front and later insertions must address
        instructions by identity.
        """
        located = []
        for site in self.sites:
            result = locate_site(module, site)
            if result is None:
                self.bump("sites_unresolved")
                self.site_outcomes[site] = "unresolved"
                continue
            func, block, index = result
            located.append((site, func, block, block.instructions[index]))
        return located

    def _insert_before(self, block: BasicBlock, target: Instruction,
                       sequence: List[Instruction]) -> None:
        index = next(
            i for i, instr in enumerate(block.instructions) if instr is target
        )
        block.instructions[index:index] = sequence


@register_pass("fence")
class FenceAtSitePass(_SiteTargetedPass):
    """Insert an ``lfence`` directly ahead of each reported gadget site."""

    name = "fence-at-site"

    def run(self, module: Module) -> None:
        for site, _, block, instr in self._resolve_all(module):
            self._insert_before(
                block, instr,
                [_fence(f"harden: fence@{site.function}#{site.ordinal}")],
            )
            self.bump("fences_inserted")
            self.site_outcomes[site] = "fenced"


@register_pass("fence-all")
class FenceAllBranchesPass(RewritePass):
    """Fence the top of both successors of every conditional branch."""

    name = "fence-all-branches"

    def __init__(self, sites: Sequence[GadgetSite] = ()) -> None:
        # The baseline ignores the reported sites (it fences everything);
        # accepting them keeps every strategy factory call-compatible.
        super().__init__()

    def run(self, module: Module) -> None:
        for func in module.functions:
            fenced: Set[str] = set()
            for index, block in enumerate(func.blocks):
                term = block.terminator
                if term is None or term.opcode is not Opcode.JCC:
                    continue
                self.bump("branches_processed")
                targets: List[BasicBlock] = []
                taken = term.operands[0]
                if isinstance(taken, Label) and func.has_block(taken.name):
                    targets.append(func.block(taken.name))
                else:
                    self.bump("unresolved_targets")
                if index + 1 < len(func.blocks):
                    targets.append(func.blocks[index + 1])
                for target in targets:
                    if target.label in fenced:
                        continue
                    fenced.add(target.label)
                    target.instructions.insert(0, _fence("harden: fence-all"))
                    self.bump("fences_inserted")


@register_pass("mask")
class MaskLoadPass(_SiteTargetedPass):
    """SLH-style masking of reported loads under a speculation predicate.

    FLAGS caveat: both inserted sequences (the guard's predicate
    arithmetic and the AND at the load) clobber the flags register.  That
    is sound here because flags are dead at every insertion point under
    this toolchain's code shapes: the guard sequence sits at the entry of
    a block whose single predecessor just consumed the flags with its
    conditional branch, and every ``jcc`` is fed by a ``cmp`` in its own
    block (``_feeding_compare`` refuses guards where that does not hold,
    and the mini-C code generator never keeps flags live across a load).
    A rewriter producing modules where flags survive a branch or a load
    would need a liveness analysis before using this pass; the
    behaviour-equivalence tests in ``tests/hardening/test_passes.py``
    pin the assumption for every shipped workload.
    """

    name = "mask-loads"

    def run(self, module: Module) -> None:
        plans: List[Tuple[IRFunction, BasicBlock, Instruction, Register]] = []
        fallbacks: List[Tuple[BasicBlock, Instruction, GadgetSite]] = []
        guards: Dict[Tuple[str, str], Tuple[IRFunction, "_Guard"]] = {}
        needs_pred = False

        for site, func, block, instr in self._resolve_all(module):
            plan = self._plan_mask(func, block, instr)
            if plan is None:
                fallbacks.append((block, instr, site))
                self.bump("fallback_fences")
                self.site_outcomes[site] = "mask-fallback-fence"
                continue
            site_guards, mask_reg = plan
            needs_pred = True
            plans.append((func, block, instr, mask_reg))
            for guard in site_guards:
                guards.setdefault((func.name, guard.protected.label),
                                  (func, guard))
            self.bump("loads_masked")
            self.site_outcomes[site] = "masked"

        for block, instr, site in fallbacks:
            self._insert_before(
                block, instr,
                [_fence(f"harden: slh-fallback@{site.function}#{site.ordinal}")],
            )
        if needs_pred:
            self._ensure_predicate_object(module)
        for func, guard in guards.values():
            guard.protected.instructions[0:0] = self._guard_sequence(guard)
            self.bump("guards_instrumented")
        for func, block, instr, mask_reg in plans:
            self._insert_before(block, instr, self._mask_sequence(mask_reg))

    # -- planning -----------------------------------------------------------
    def _plan_mask(self, func: IRFunction, block: BasicBlock,
                   instr: Instruction):
        """Work out whether (and how) a site can be masked.

        Returns ``(guards, index_register)`` or ``None`` when the site must
        fall back to a fence.
        """
        if not is_load(instr) or instr.opcode is not Opcode.LOAD:
            return None
        mem = instr.memory_operand()
        if mem is None or mem.index is None or mem.index.is_frame_relative:
            return None
        site_guards = self._dominating_guards(func, block)
        if not site_guards:
            return None
        return site_guards, mem.index

    def _dominating_guards(self, func: IRFunction,
                           load_block: BasicBlock) -> List["_Guard"]:
        """Every dominating conditional branch whose predicate is maskable."""
        order = {blk.label: i for i, blk in enumerate(func.blocks)}
        doms = _dominators(func)
        preds = func.predecessors()
        load_doms = doms.get(load_block.label, set())
        guards: List[_Guard] = []
        for block in func.blocks:  # layout order keeps emission deterministic
            if block.label not in load_doms:
                continue
            if block is load_block:
                continue  # a terminator branch comes after the load
            term = block.terminator
            if term is None or term.opcode is not Opcode.JCC:
                continue
            guard = self._guard_for_branch(
                func, block, term, load_block, order, doms, preds
            )
            if guard is not None:
                guards.append(guard)
        return guards

    def _guard_for_branch(self, func, branch_block, term, load_block,
                          order, doms, preds) -> Optional["_Guard"]:
        target = term.operands[0]
        if not isinstance(target, Label) or not func.has_block(target.name):
            return None
        taken = func.block(target.name)
        next_index = order[branch_block.label] + 1
        if next_index >= len(func.blocks):
            return None
        fallthrough = func.blocks[next_index]

        def covers(candidate: BasicBlock) -> bool:
            return (candidate is load_block
                    or candidate.label in doms.get(load_block.label, set()))

        taken_covers = covers(taken)
        fall_covers = covers(fallthrough)
        if taken_covers == fall_covers:
            return None  # join point or unreachable side: polarity unknown
        protected = taken if taken_covers else fallthrough
        condition = term.cc if taken_covers else term.cc.negate()
        if condition not in _MASKABLE_CCS:
            return None
        # The predicate is re-materialised from the compare's operands at
        # the protected block's entry; that is only sound when the compare
        # directly feeds the branch and the block cannot be entered from
        # anywhere else with stale register contents.
        if preds.get(protected.label, set()) != {branch_block.label}:
            return None
        compare = self._feeding_compare(branch_block)
        if compare is None:
            return None
        a, b = compare.operands
        if not isinstance(a, (Reg, Imm)) or not isinstance(b, (Reg, Imm)):
            return None
        return _Guard(protected=protected, condition=condition, a=a, b=b)

    @staticmethod
    def _feeding_compare(block: BasicBlock) -> Optional[Instruction]:
        """The ``cmp`` setting the branch's flags, if it immediately does."""
        architectural = [i for i in block.instructions if not is_pseudo(i)]
        if len(architectural) < 2:
            return None
        candidate = architectural[-2]
        if candidate.opcode is not Opcode.CMP:
            return None
        return candidate

    # -- emission -----------------------------------------------------------
    @staticmethod
    def _ensure_predicate_object(module: Module) -> None:
        for obj in module.data_objects:
            if obj.name == PRED_SYMBOL:
                return
        # All-ones: "not misspeculating" is the architectural invariant.
        module.data_objects.append(
            DataObject(PRED_SYMBOL, b"\xff" * 8, section=".data", align=8)
        )

    def _guard_sequence(self, guard: "_Guard") -> List[Instruction]:
        """Accumulate this branch's predicate mask into the predicate slot.

        The mask must agree with the branch's flag semantics *exactly* —
        ``jl`` tests ``SF != OF``, so a plain ``sar64(x - y)`` would be
        wrong on signed overflow (an attacker-supplied INT64_MIN index
        would poison the predicate architecturally).  The overflow-exact
        sign word is ``diff ^ ((x ^ y) & (diff ^ x))`` (Hacker's Delight
        §2-12: the second term is the subtraction's OF in the sign bit,
        and ``SF ^ OF`` is signed less-than).
        """
        x_pos, y_pos, complement = _MASKABLE_CCS[guard.condition]
        operands = (guard.a, guard.b)
        x, y = operands[x_pos], operands[y_pos]
        excluded: Set[Register] = set()
        for operand in operands:
            if isinstance(operand, Reg):
                excluded.add(operand.reg)
        t, u, w = (Reg(r) for r in _scratch_registers(3, excluded))
        pred = Mem(disp=Label(PRED_SYMBOL))
        seq = [
            push(t),
            push(u),
            push(w),
            mov(t, x),
            Instruction(Opcode.SUB, [t, y]),    # t = diff = x - y   (SF word)
            mov(u, x),
            Instruction(Opcode.XOR, [u, y]),    # u = x ^ y
            mov(w, t),
            Instruction(Opcode.XOR, [w, x]),    # w = diff ^ x
            Instruction(Opcode.AND, [u, w]),    # u = OF word
            Instruction(Opcode.XOR, [t, u]),    # t sign bit = SF ^ OF = x < y
            Instruction(Opcode.SAR, [t, Imm(63)]),
        ]
        if complement:
            seq.append(Instruction(Opcode.NOT, [t]))
        seq.extend([
            load(u, pred),
            Instruction(Opcode.AND, [u, t]),
            store(pred, u),
            pop(w),
            pop(u),
            pop(t),
        ])
        for instr in seq:
            instr.comment = "harden: slh-guard"
        return seq

    @staticmethod
    def _mask_sequence(index_reg: Register) -> List[Instruction]:
        """AND the load's index register with the speculation predicate."""
        (t,) = (Reg(r) for r in _scratch_registers(1, {index_reg}))
        seq = [
            push(t),
            load(t, Mem(disp=Label(PRED_SYMBOL))),
            Instruction(Opcode.AND, [Reg(index_reg), t]),
            pop(t),
        ]
        for instr in seq:
            instr.comment = "harden: slh-mask"
        return seq


class _Guard:
    """One dominating conditional branch protecting a masked load."""

    def __init__(self, protected: BasicBlock, condition: ConditionCode,
                 a, b) -> None:
        self.protected = protected
        self.condition = condition
        self.a = a
        self.b = b


def _dominators(func: IRFunction) -> Dict[str, Set[str]]:
    """Dominator sets per block label (iterative dataflow; CFGs are tiny)."""
    if not func.blocks:
        return {}
    labels = [blk.label for blk in func.blocks]
    preds = func.predecessors()
    entry = labels[0]
    all_labels = set(labels)
    doms: Dict[str, Set[str]] = {label: set(all_labels) for label in labels}
    doms[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for label in labels:
            if label == entry:
                continue
            pred_labels = preds.get(label, set())
            if pred_labels:
                new = set.intersection(*(doms[p] for p in pred_labels))
            else:
                new = set()  # unreachable block: nothing dominates it
            new.add(label)
            if new != doms[label]:
                doms[label] = new
                changed = True
    return doms
