"""``python -m repro.hardening`` / ``repro-harden``: the hardening CLI.

Closes the loop from a fuzzing campaign's report output to a verified,
overhead-accounted hardened binary.  Examples::

    # Detect, patch with targeted fences, verify, and print the account.
    repro-harden --target gadgets --strategy fence --iterations 400

    # Compare every strategy on the injected jsmn build, JSON to a file.
    repro-harden --target jsmn --variant injected --strategy all \
        --iterations 200 --json jsmn-hardening.json

    # Patch from a previously saved report file instead of re-fuzzing.
    repro-harden --target gadgets --strategy mask --report-in reports.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.campaign.spec import TOOLS, VARIANTS
from repro.hardening.passes import STRATEGIES, strategy_names
from repro.runtime.fastpath import engine_names
from repro.hardening.pipeline import detect_reports, run_hardening
from repro.sanitizers.reports import GadgetReport
from repro.targets import runnable_targets


def load_reports(path: str) -> List[GadgetReport]:
    """Read gadget reports from a JSON file.

    Accepts either a plain list of ``GadgetReport.to_dict`` records or an
    object with a ``"reports"`` key holding one (the shape the campaign
    checkpoint and hardening outputs use).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        payload = payload.get("reports", [])
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a list of report records")
    return [GadgetReport.from_dict(record) for record in payload]


def build_parser(prog: str = "repro-harden") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Report-guided mitigation synthesis with re-fuzz "
                    "verification and cycle-overhead accounting.",
    )
    parser.add_argument("--target", required=True,
                        help=f"target to harden ({', '.join(runnable_targets())})")
    parser.add_argument("--strategy", default="fence",
                        help="mitigation strategy "
                             f"({', '.join(strategy_names())}) or 'all' to "
                             "compare the built-in strategies")
    parser.add_argument("--variant", choices=VARIANTS, default="vanilla",
                        help="binary variant to fuzz and patch "
                             "(default: vanilla)")
    parser.add_argument("--tool", choices=TOOLS, default="teapot",
                        help="detector producing the reports (default: teapot)")
    parser.add_argument("--iterations", type=int, default=400,
                        help="fuzzing executions for the detection and "
                             "verification campaigns (default: 400)")
    parser.add_argument("--rounds", type=int, default=1,
                        help="corpus-sync rounds per campaign (default: 1)")
    parser.add_argument("--seed", type=int, default=1234,
                        help="campaign seed (default: 1234)")
    parser.add_argument("--engine", choices=tuple(engine_names()),
                        default="fast",
                        help="emulator engine (default: fast)")
    parser.add_argument("--variants", default="pht", dest="spec_variants",
                        help="comma-separated speculation variants both "
                             "campaigns simulate (pht, btb, rsb, stl; "
                             "default: pht)")
    parser.add_argument("--perf-size", type=int, default=200,
                        help="crafted performance-input size for the "
                             "overhead account (default: 200)")
    parser.add_argument("--report-in", metavar="PATH", default=None,
                        help="JSON gadget reports to patch from (skips the "
                             "detection campaign)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the hardening report(s) as JSON "
                             "('-' for stdout)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    return parser


def main(argv: Optional[Sequence[str]] = None,
         prog: str = "repro-harden") -> int:
    parser = build_parser(prog=prog)
    args = parser.parse_args(argv)

    if args.target not in runnable_targets():
        parser.error(f"unknown target {args.target!r}; "
                     f"choose from {', '.join(runnable_targets())}")
    from repro.campaign.cli import _parse_list
    from repro.plugins import model_names

    try:
        spec_variants = tuple(_parse_list(args.spec_variants, model_names(),
                                          "speculation variant"))
    except argparse.ArgumentTypeError as error:
        parser.error(str(error))
    if args.strategy == "all":
        strategies: Sequence[str] = STRATEGIES
    elif args.strategy in strategy_names():
        # The registry includes third-party ``@register_pass`` plugins.
        strategies = (args.strategy,)
    else:
        parser.error(f"unknown strategy {args.strategy!r}; "
                     f"choose from {', '.join(strategy_names())} or 'all'")

    reports = None
    if args.report_in:
        try:
            reports = load_reports(args.report_in)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot load {args.report_in}: {error}",
                  file=sys.stderr)
            return 2

    progress = None if args.quiet else (
        lambda message: print(f"[harden] {message}", file=sys.stderr)
    )
    if reports is None and len(strategies) > 1:
        # Comparing strategies: detect once and patch every strategy from
        # the same report set (the campaign is deterministic, so this only
        # saves the redundant re-detections).
        if progress:
            progress(f"fuzzing baseline {args.target}/{args.variant} "
                     f"with {args.tool}")
        try:
            reports = detect_reports(
                args.target, variant=args.variant, tool=args.tool,
                iterations=args.iterations, rounds=args.rounds,
                seed=args.seed, engine=args.engine,
                spec_variants=spec_variants,
            )
        except (ValueError, RuntimeError, KeyError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    results = []
    for strategy in strategies:
        try:
            result = run_hardening(
                target=args.target,
                strategy=strategy,
                variant=args.variant,
                tool=args.tool,
                iterations=args.iterations,
                rounds=args.rounds,
                seed=args.seed,
                engine=args.engine,
                perf_input_size=args.perf_size,
                reports=reports,
                progress=progress,
                spec_variants=spec_variants,
            )
        except (ValueError, RuntimeError, KeyError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        results.append(result)
        # With ``--json -`` stdout carries machine-readable output only;
        # the human summary moves to stderr so piping stays clean.
        summary_stream = sys.stderr if args.json == "-" else sys.stdout
        print(result.format_summary(), file=summary_stream)

    payload = [result.to_dict() for result in results]
    if args.json == "-":
        print(json.dumps(payload, indent=1, sort_keys=True))
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    # Exit non-zero when a targeted strategy left residual sites, so CI can
    # gate on "the patches actually worked".
    failed = any(result.residual for result in results)
    return 1 if failed else 0


def deprecated_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the deprecated ``repro-harden`` console script."""
    print("repro-harden is deprecated; use `repro harden` "
          "(same arguments) — see docs/api.md", file=sys.stderr)
    return main(argv)


if __name__ == "__main__":
    sys.exit(main())
