"""Hardening: report-guided mitigation synthesis and verification.

This package closes the detect → patch → verify loop of the paper's
workflow: a fuzzing campaign produces :class:`~repro.sanitizers.reports.
GadgetReport` records, :mod:`repro.hardening.sites` resolves their program
counters back to instruction positions in the *uninstrumented* binary,
:mod:`repro.hardening.passes` synthesises a mitigation (targeted fences,
SLH-style load masking, or the fence-every-branch baseline) through the
ordinary rewriting pipeline, and :mod:`repro.hardening.pipeline` re-runs
the campaign on the hardened binary to prove the reported sites are gone —
while accounting the cycle overhead each strategy costs.
"""

from repro.hardening.passes import (
    STRATEGIES,
    FenceAllBranchesPass,
    FenceAtSitePass,
    HardeningError,
    MaskLoadPass,
    strategy_names,
    strategy_pass,
)
from repro.hardening.pipeline import (
    HardeningResult,
    PatchOutcome,
    VerifyOutcome,
    detect_reports,
    harden_module,
    measure_cycles,
    patch_binary,
    run_hardening,
    verify_patch,
)
from repro.hardening.sites import (
    GadgetSite,
    SiteResolver,
    locate_site,
    ordinal_translation,
    resolve_sites,
    snapshot_architectural,
)

__all__ = [
    "STRATEGIES",
    "FenceAllBranchesPass",
    "FenceAtSitePass",
    "HardeningError",
    "MaskLoadPass",
    "strategy_names",
    "strategy_pass",
    "HardeningResult",
    "PatchOutcome",
    "VerifyOutcome",
    "detect_reports",
    "harden_module",
    "measure_cycles",
    "patch_binary",
    "run_hardening",
    "verify_patch",
    "GadgetSite",
    "SiteResolver",
    "locate_site",
    "ordinal_translation",
    "resolve_sites",
    "snapshot_architectural",
]
