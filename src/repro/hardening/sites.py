"""Site mapping: report program counters back to IR instruction positions.

Gadget reports carry the address of the *policy-check pseudo-op* that fired
inside the instrumented binary — usually inside a ``$spec`` Shadow-Copy
function, surrounded by coverage, DIFT and restore-point instrumentation.
To patch the gadget we need the corresponding instruction of the original,
uninstrumented module.  The mapping exploits an invariant every rewriting
pass in this repository maintains: passes only *insert* instructions
(pseudo-ops in place, trampoline blocks at the end of a function) and never
remove or reorder the architectural ones.  The n-th architectural
instruction of an instrumented function (Real or Shadow Copy) is therefore
the n-th architectural instruction of the original function, so a site is
identified by the stable key ``(function, architectural ordinal)``.

The same idea also bridges *hardening* passes, which insert architectural
instructions (fences, masking sequences) and thereby shift ordinals:
:func:`snapshot_architectural` / :func:`ordinal_translation` record, per
function, which hardened-module ordinal each original instruction moved
to, so reports from the re-fuzz verification run can be compared against
the pre-hardening sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.shadows import SHADOW_SUFFIX
from repro.disasm.ir import BasicBlock, IRFunction, Module
from repro.isa.encoding import decode_instruction
from repro.isa.instructions import (
    Instruction,
    is_conditional_branch,
    is_load,
    is_pseudo,
    is_store,
)
from repro.loader.binary_format import Symbol, TelfBinary
from repro.sanitizers.reports import GadgetReport


@dataclass(frozen=True)
class GadgetSite:
    """A gadget location stable across instrumentation: (function, ordinal).

    ``function`` is the Real-Copy function name (any ``$spec`` suffix is
    stripped during resolution) and ``ordinal`` the index of the vulnerable
    instruction among the function's *architectural* (non-pseudo)
    instructions in layout order.  ``kind`` records what the instruction is
    so passes can choose a mitigation shape.
    """

    function: str
    ordinal: int
    kind: str  # "load" | "store" | "branch" | "other"

    @property
    def key(self) -> Tuple[str, int]:
        """Identity used to compare sites across binaries."""
        return (self.function, self.ordinal)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (hardening reports, CLI output)."""
        return {"function": self.function, "ordinal": self.ordinal,
                "kind": self.kind}


def real_function_name(name: str) -> str:
    """Strip the Shadow-Copy suffix from a function name."""
    if name.endswith(SHADOW_SUFFIX):
        return name[: -len(SHADOW_SUFFIX)]
    return name


def site_kind(instr: Instruction) -> str:
    """Classify the vulnerable instruction for mitigation selection."""
    if is_conditional_branch(instr):
        return "branch"
    if is_load(instr):
        return "load"
    if is_store(instr):
        return "store"
    return "other"


class SiteResolver:
    """Maps report PCs of one binary to :class:`GadgetSite` keys.

    Works on any binary this toolchain produces — vanilla, Teapot- or
    SpecFuzz-instrumented, hardened, or hardened-then-instrumented —
    because it only linearly decodes each function symbol's byte extent
    (no CFG recovery, so instrumentation pseudo-ops are harmless).
    """

    def __init__(self, binary: TelfBinary) -> None:
        self.binary = binary
        self._decoded: Dict[str, List[Instruction]] = {}

    def _function_instructions(self, symbol: Symbol) -> List[Instruction]:
        if symbol.name not in self._decoded:
            text = self.binary.text
            instrs: List[Instruction] = []
            offset = symbol.address - text.address
            end = offset + symbol.size
            while offset < end:
                instr, length = decode_instruction(text.data, offset)
                instr.address = text.address + offset
                instrs.append(instr)
                offset += length
            self._decoded[symbol.name] = instrs
        return self._decoded[symbol.name]

    def resolve_pc(self, pc: int) -> Optional[GadgetSite]:
        """The site of the first architectural instruction at/after ``pc``.

        Report PCs point at the policy pseudo-op that guards the vulnerable
        instruction, so the next architectural instruction *is* the
        vulnerable load/store/branch.  Returns ``None`` for PCs outside any
        function (e.g. reports from hand-built binaries without symbols).
        """
        symbol = self.binary.function_at(pc)
        if symbol is None:
            return None
        ordinal = 0
        for instr in self._function_instructions(symbol):
            if is_pseudo(instr):
                continue
            if instr.address is not None and instr.address >= pc:
                return GadgetSite(
                    function=real_function_name(symbol.name),
                    ordinal=ordinal,
                    kind=site_kind(instr),
                )
            ordinal += 1
        return None


def resolve_sites(
    binary: TelfBinary, reports: Iterable[GadgetReport]
) -> Dict[GadgetSite, List[GadgetReport]]:
    """Group reports by the :class:`GadgetSite` their PC resolves to.

    ``binary`` must be the binary the reports' PCs refer to (the
    instrumented one the campaign fuzzed).  Reports whose PC cannot be
    resolved are dropped — they cannot be patched at a site.
    """
    resolver = SiteResolver(binary)
    sites: Dict[GadgetSite, List[GadgetReport]] = {}
    for report in reports:
        site = resolver.resolve_pc(report.pc)
        if site is not None:
            sites.setdefault(site, []).append(report)
    return sites


def locate_site(
    module: Module, site: GadgetSite
) -> Optional[Tuple[IRFunction, BasicBlock, int]]:
    """Find a site's instruction inside a disassembled module.

    Returns ``(function, block, index-within-block)`` of the architectural
    instruction at the site's ordinal, or ``None`` when the function does
    not exist or the ordinal is out of range.
    """
    if not module.has_function(site.function):
        return None
    func = module.function(site.function)
    ordinal = 0
    for block in func.blocks:
        for index, instr in enumerate(block.instructions):
            if is_pseudo(instr):
                continue
            if ordinal == site.ordinal:
                return func, block, index
            ordinal += 1
    return None


# ---------------------------------------------------------------------------
# Ordinal translation across hardening (which inserts architectural code)
# ---------------------------------------------------------------------------

def snapshot_architectural(module: Module) -> Dict[str, Dict[int, int]]:
    """Record each architectural instruction's ordinal, keyed by identity.

    Taken *before* hardening passes run; because passes mutate blocks in
    place and only insert fresh :class:`Instruction` objects, the original
    objects survive and can be recognised by ``id()`` afterwards.
    """
    snapshot: Dict[str, Dict[int, int]] = {}
    for func in module.functions:
        ordinals: Dict[int, int] = {}
        ordinal = 0
        for instr in func.instructions():
            if is_pseudo(instr):
                continue
            ordinals[id(instr)] = ordinal
            ordinal += 1
        snapshot[func.name] = ordinals
    return snapshot


def ordinal_translation(
    module: Module, snapshot: Dict[str, Dict[int, int]]
) -> Dict[str, Dict[int, int]]:
    """Per-function map from *hardened* ordinal to *original* ordinal.

    Instructions inserted by hardening passes have no original ordinal and
    are absent from the map — a verification report landing on one is a
    genuinely new site.
    """
    translation: Dict[str, Dict[int, int]] = {}
    for func in module.functions:
        original = snapshot.get(func.name, {})
        mapping: Dict[int, int] = {}
        ordinal = 0
        for instr in func.instructions():
            if is_pseudo(instr):
                continue
            old = original.get(id(instr))
            if old is not None:
                mapping[ordinal] = old
            ordinal += 1
        translation[func.name] = mapping
    return translation


def translate_site(
    site: GadgetSite, translation: Dict[str, Dict[int, int]]
) -> Optional[GadgetSite]:
    """Rewrite a hardened-binary site into original-binary coordinates."""
    mapping = translation.get(site.function)
    if mapping is None:
        return None
    old = mapping.get(site.ordinal)
    if old is None:
        return None
    return GadgetSite(function=site.function, ordinal=old, kind=site.kind)
