"""The detect → patch → verify pipeline.

:func:`run_hardening` drives the whole loop for one (target, strategy)
pair:

1. **Detect** — run a deterministic fuzzing campaign against the
   tool-instrumented build (reusing :mod:`repro.campaign`'s scheduler) and
   collect the deduplicated gadget reports.
2. **Map** — resolve every report PC back to a :class:`~repro.hardening.
   sites.GadgetSite` of the uninstrumented module.
3. **Patch** — disassemble the original binary, run the strategy's
   rewriting pass, and reassemble the hardened binary.
4. **Verify** — substitute the hardened binary for the target (``
   binary_override``), re-run the *same* campaign, and classify each
   original site as eliminated or residual (plus any new sites the re-fuzz
   surfaced).
5. **Account** — execute the original and hardened binaries natively (no
   instrumentation) over the target's crafted performance input and report
   the cycle overhead the mitigation costs a deployed binary.

Everything is deterministic: same spec, same seed, same sites, same
overhead, so results are directly comparable across strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.campaign.scheduler import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.worker import (
    binary_override,
    compiled_binary,
    instrumented_binary,
)
from repro.disasm.disassembler import disassemble
from repro.disasm.ir import Module
from repro.hardening.passes import strategy_pass
from repro.hardening.sites import (
    GadgetSite,
    ordinal_translation,
    resolve_sites,
    snapshot_architectural,
    translate_site,
)
from repro.loader.binary_format import TelfBinary
from repro.rewriting.passes import PassManager
from repro.rewriting.reassemble import reassemble
from repro.runtime.fastpath import resolve_engine
from repro.sanitizers.reports import GadgetReport
from repro.targets import get_target


def measure_cycles(binary: TelfBinary, input_data: bytes,
                   engine: str = "fast") -> int:
    """Cycle count of one native (uninstrumented) execution."""
    emulator_cls, _ = resolve_engine(engine)
    result = emulator_cls(binary).run(input_data)
    if not result.ok:
        raise RuntimeError(
            f"native run failed: {result.status} {result.crash_reason}"
        )
    return result.cycles


def harden_module(module: Module, strategy: str,
                  sites: Iterable[GadgetSite]):
    """Apply one strategy to a module in place.

    Returns ``(pass_stats, site_outcomes, translation)`` where
    ``translation`` maps each function's hardened architectural ordinals
    back to the pre-hardening ones (see :mod:`repro.hardening.sites`).
    """
    ordered = sorted(sites, key=lambda s: (s.function, s.ordinal))
    snapshot = snapshot_architectural(module)
    mitigation = strategy_pass(strategy, ordered)
    stats = PassManager().add(mitigation).run(module)
    translation = ordinal_translation(module, snapshot)
    outcomes = dict(getattr(mitigation, "site_outcomes", {}))
    return stats, outcomes, translation


def _site_dict(site: GadgetSite,
               reports: Optional[List[GadgetReport]] = None,
               outcome: Optional[str] = None) -> Dict[str, object]:
    record = site.to_dict()
    if reports:
        record["channels"] = sorted({r.channel.value for r in reports})
        record["attackers"] = sorted({r.attacker.value for r in reports})
        record["pcs"] = sorted({r.pc for r in reports})
        record["variants"] = sorted({r.variant for r in reports})
    if outcome is not None:
        record["mitigation"] = outcome
    return record


def _variant_breakdown(*site_lists) -> Dict[str, Dict[str, int]]:
    """Per-variant counts over (eliminated, residual, new) site records.

    A site reported by several speculation variants counts once under each
    — a fence that kills the PHT path of a load but leaves its STL path
    must show up as residual *for stl* and eliminated *for pht*.  Residual
    records therefore carry ``residual_variants`` (the variants the verify
    re-fuzz actually still reported, recorded by :func:`verify_patch`);
    baseline variants outside that set count as eliminated.
    """
    labels = ("eliminated", "residual", "new")
    breakdown: Dict[str, Dict[str, int]] = {}

    def bump(variant: str, label: str) -> None:
        cell = breakdown.setdefault(variant, {key: 0 for key in labels})
        cell[label] += 1

    eliminated, residual, new = site_lists
    for record in eliminated:
        for variant in record.get("variants", ["pht"]):
            bump(variant, "eliminated")
    for record in residual:
        baseline = record.get("variants", ["pht"])
        surviving = set(record.get("residual_variants", baseline))
        for variant in baseline:
            bump(variant, "residual" if variant in surviving
                 else "eliminated")
        # A variant that only *appeared* at the site under re-fuzz still
        # counts as residual (the site demonstrably leaks through it).
        for variant in sorted(surviving.difference(baseline)):
            bump(variant, "residual")
    for record in new:
        for variant in record.get("variants", ["pht"]):
            bump(variant, "new")
    return breakdown


@dataclass
class PatchOutcome:
    """The product of the patch step: a hardened binary plus bookkeeping.

    Produced by :func:`patch_binary` and consumed by :func:`verify_patch`;
    :func:`run_hardening` and the :mod:`repro.api` pipeline both build
    their results from this pair, so the two entry points cannot drift.
    """

    target: str
    variant: str
    tool: str
    strategy: str
    #: per-site report lists keyed by resolved gadget site.
    site_reports: Dict[GadgetSite, List[GadgetReport]]
    #: per-site mitigation outcome ("fenced", "masked", ...).
    outcomes: Dict[GadgetSite, str]
    #: hardened-ordinal -> original-ordinal translation per function.
    translation: Dict[str, Dict[int, int]]
    #: per-pass rewriting statistics.
    pass_stats: Dict[str, Dict[str, int]]
    base_binary: TelfBinary
    hardened: TelfBinary

    @property
    def sites_before(self) -> List[Dict[str, object]]:
        """JSON records of the pre-hardening sites, in stable order."""
        return [
            _site_dict(site, self.site_reports[site], self.outcomes.get(site))
            for site in sorted(self.site_reports,
                               key=lambda s: (s.function, s.ordinal))
        ]


@dataclass
class VerifyOutcome:
    """The product of the re-fuzz verification of one hardened binary."""

    eliminated: List[Dict[str, object]] = field(default_factory=list)
    residual: List[Dict[str, object]] = field(default_factory=list)
    new_sites: List[Dict[str, object]] = field(default_factory=list)
    executions: int = 0


def patch_binary(target: str, strategy: str, variant: str = "vanilla",
                 tool: str = "teapot",
                 reports: Iterable[GadgetReport] = ()) -> PatchOutcome:
    """Map reports to sites and synthesise one strategy's hardened binary.

    The report PCs must refer to the deterministic instrumented build of
    the same (target, tool, variant) — which is what every campaign
    fuzzes.
    """
    instrumented = instrumented_binary(target, tool, variant)
    site_reports = resolve_sites(instrumented, reports)
    base_binary = compiled_binary(target, variant)
    module = disassemble(base_binary)
    stats, outcomes, translation = harden_module(
        module, strategy, site_reports.keys()
    )
    return PatchOutcome(
        target=target, variant=variant, tool=tool, strategy=strategy,
        site_reports=site_reports, outcomes=outcomes,
        translation=translation, pass_stats=stats,
        base_binary=base_binary, hardened=reassemble(module),
    )


def verify_patch(patch: PatchOutcome, spec: CampaignSpec,
                 scheduler: str = "pool") -> VerifyOutcome:
    """Re-fuzz a hardened binary and classify every baseline site.

    Substitutes the hardened binary for the target's compiled build
    (``binary_override``), re-runs the campaign described by ``spec``
    (through the named scheduler plugin) and sorts the baseline sites
    into eliminated/residual — plus any new sites the re-fuzz surfaced
    (ordinal-translated back where possible).
    """
    with binary_override(patch.target, patch.variant, patch.hardened):
        verification = run_campaign(spec, scheduler=scheduler)
        verify_instrumented = instrumented_binary(
            patch.target, patch.tool, patch.variant)
    verify_row = verification.row(patch.target, patch.tool, patch.variant)
    verify_sites = resolve_sites(verify_instrumented, verify_row.collection)
    outcome = VerifyOutcome(executions=verify_row.executions)

    baseline_keys = {site.key for site in patch.site_reports}
    surviving: Dict[Tuple[str, int], set] = {}
    for site, site_hits in verify_sites.items():
        original = translate_site(site, patch.translation)
        if original is not None and original.key in baseline_keys:
            surviving.setdefault(original.key, set()).update(
                report.variant for report in site_hits)
        else:
            record = _site_dict(site, site_hits)
            if original is not None:
                record["original_ordinal"] = original.ordinal
            outcome.new_sites.append(record)
    for record in patch.sites_before:
        key = (record["function"], record["ordinal"])
        if key in surviving:
            # Record which variants the re-fuzz actually still reported,
            # so the per-variant breakdown can count the others eliminated.
            residual_record = dict(record)
            residual_record["residual_variants"] = sorted(surviving[key])
            outcome.residual.append(residual_record)
        else:
            outcome.eliminated.append(record)
    return outcome


@dataclass
class HardeningResult:
    """Everything one detect → patch → verify run produced."""

    target: str
    variant: str
    tool: str
    strategy: str
    engine: str
    iterations: int
    seed: int
    #: pre-hardening unique gadget sites (with channels/pcs/mitigation).
    sites_before: List[Dict[str, object]] = field(default_factory=list)
    #: baseline sites absent from the verification re-fuzz.
    eliminated: List[Dict[str, object]] = field(default_factory=list)
    #: baseline sites the re-fuzz still reported (mitigation failed).
    residual: List[Dict[str, object]] = field(default_factory=list)
    #: sites the re-fuzz reported that did not exist before hardening.
    new_sites: List[Dict[str, object]] = field(default_factory=list)
    #: per-pass rewriting statistics (fences inserted, loads masked, ...).
    pass_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: cycle accounting on the target's crafted performance input.
    native_cycles: int = 0
    hardened_cycles: int = 0
    #: executions performed by the baseline and verification campaigns.
    baseline_executions: int = 0
    verify_executions: int = 0

    @property
    def overhead(self) -> float:
        """Hardened / native run time on the performance input."""
        if self.native_cycles == 0:
            return 1.0
        return self.hardened_cycles / self.native_cycles

    @property
    def all_eliminated(self) -> bool:
        """Whether every reported site disappeared under re-fuzz."""
        return bool(self.sites_before) and not self.residual

    @property
    def by_variant(self) -> Dict[str, Dict[str, int]]:
        """Eliminated/residual/new site counts per speculation variant."""
        return _variant_breakdown(self.eliminated, self.residual,
                                  self.new_sites)

    def to_dict(self) -> Dict[str, object]:
        """Stable JSON-ready form (CLI output, CI artifacts)."""
        return {
            "target": self.target,
            "variant": self.variant,
            "tool": self.tool,
            "strategy": self.strategy,
            "engine": self.engine,
            "iterations": self.iterations,
            "seed": self.seed,
            "sites_before": self.sites_before,
            "eliminated": self.eliminated,
            "residual": self.residual,
            "new_sites": self.new_sites,
            "by_variant": self.by_variant,
            "pass_stats": self.pass_stats,
            "native_cycles": self.native_cycles,
            "hardened_cycles": self.hardened_cycles,
            "overhead": round(self.overhead, 4),
            "baseline_executions": self.baseline_executions,
            "verify_executions": self.verify_executions,
        }

    def format_summary(self) -> str:
        """A short human-readable account of the run."""
        lines = [
            f"{self.target}/{self.variant} [{self.tool}] strategy={self.strategy}",
            f"  sites before: {len(self.sites_before)}  "
            f"eliminated: {len(self.eliminated)}  "
            f"residual: {len(self.residual)}  "
            f"new: {len(self.new_sites)}",
            f"  overhead: {self.overhead:.3f}x "
            f"({self.hardened_cycles} vs {self.native_cycles} cycles)",
        ]
        breakdown = self.by_variant
        if len(breakdown) > 1:
            parts = [
                f"{variant}: {cell['eliminated']}/"
                f"{cell['eliminated'] + cell['residual']} eliminated"
                + (f", {cell['new']} new" if cell["new"] else "")
                for variant, cell in sorted(breakdown.items())
            ]
            lines.append("  per variant: " + "  ".join(parts))
        for name, stats in self.pass_stats.items():
            formatted = ", ".join(f"{k}={v}" for k, v in sorted(stats.items()))
            lines.append(f"  pass {name}: {formatted or 'no-op'}")
        return "\n".join(lines)


def _campaign_spec(target: str, tool: str, variant: str, iterations: int,
                   rounds: int, seed: int, engine: str,
                   spec_variants=("pht",)) -> CampaignSpec:
    return CampaignSpec(
        targets=(target,),
        tools=(tool,),
        variants=(variant,),
        iterations=iterations,
        rounds=rounds,
        shards=1,
        seed=seed,
        workers=1,
        engine=engine,
        skip_uninjectable=False,
        spec_variants=tuple(spec_variants),
    )


def detect_reports(
    target: str,
    variant: str = "vanilla",
    tool: str = "teapot",
    iterations: int = 400,
    rounds: int = 1,
    seed: int = 1234,
    engine: str = "fast",
    spec_variants=("pht",),
) -> List[GadgetReport]:
    """Run the detection campaign alone and return its unique reports.

    Useful for comparing several strategies against one report set (the
    matrix experiment does this) or for feeding ``--report-in`` workflows.
    """
    spec = _campaign_spec(target, tool, variant, iterations, rounds, seed,
                          engine, spec_variants)
    summary = run_campaign(spec)
    return summary.row(target, tool, variant).collection.reports()


def run_hardening(
    target: str,
    strategy: str,
    variant: str = "vanilla",
    tool: str = "teapot",
    iterations: int = 400,
    rounds: int = 1,
    seed: int = 1234,
    engine: str = "fast",
    perf_input_size: int = 200,
    reports: Optional[Iterable[GadgetReport]] = None,
    progress=None,
    spec_variants=("pht",),
) -> HardeningResult:
    """Run the full detect → patch → verify → account loop for one target.

    ``reports`` short-circuits the detection campaign with pre-recorded
    gadget reports (e.g. from a previous ``repro-campaign`` run); their PCs
    must refer to the deterministic instrumented build of the same
    (target, tool, variant), which is what every campaign fuzzes.
    ``spec_variants`` selects the speculation variants both the detection
    and the verification campaigns simulate; the result's ``by_variant``
    breaks eliminated/residual/new down per variant.
    """
    note = progress or (lambda message: None)
    spec = _campaign_spec(target, tool, variant, iterations, rounds, seed,
                          engine, spec_variants)
    result = HardeningResult(
        target=target, variant=variant, tool=tool, strategy=strategy,
        engine=engine, iterations=iterations, seed=seed,
    )

    # 1. Detect.
    if reports is None:
        note(f"fuzzing baseline {target}/{variant} with {tool}")
        baseline = run_campaign(spec)
        row = baseline.row(target, tool, variant)
        collection: Iterable[GadgetReport] = row.collection
        result.baseline_executions = row.executions
    else:
        collection = list(reports)

    # 2+3. Map and patch.
    patch = patch_binary(target, strategy, variant=variant, tool=tool,
                         reports=collection)
    result.pass_stats = patch.pass_stats
    result.sites_before = patch.sites_before
    note(f"{len(patch.site_reports)} unique gadget sites to harden")

    # 4. Verify.
    note(f"re-fuzzing hardened binary ({strategy})")
    verification = verify_patch(patch, spec)
    result.verify_executions = verification.executions
    result.eliminated = verification.eliminated
    result.residual = verification.residual
    result.new_sites = verification.new_sites

    # 5. Account.
    perf_input = get_target(target).perf_input(perf_input_size)
    result.native_cycles = measure_cycles(patch.base_binary, perf_input,
                                          engine)
    result.hardened_cycles = measure_cycles(patch.hardened, perf_input,
                                            engine)
    note(f"overhead {result.overhead:.3f}x, "
         f"{len(result.eliminated)}/{len(result.sites_before)} sites eliminated")
    return result
