"""Entry point for ``python -m repro.hardening``."""

import sys

from repro.hardening.cli import main

if __name__ == "__main__":
    sys.exit(main())
