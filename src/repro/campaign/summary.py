"""Campaign summaries: the Table-3/Table-4-style output of a matrix run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.campaign.store import CampaignState, group_key_str
from repro.fuzzing.fuzzer import CampaignResult
from repro.sanitizers.reports import ReportCollection


@dataclass
class GroupSummary:
    """One row of the campaign table: one (target, tool, variant) group."""

    target: str
    tool: str
    variant: str
    executions: int = 0
    crashes: int = 0
    hangs: int = 0
    total_cycles: int = 0
    total_steps: int = 0
    corpus_size: int = 0
    normal_coverage: int = 0
    speculative_coverage: int = 0
    unique_gadgets: int = 0
    raw_reports: int = 0
    #: jobs of this group that raised instead of completing.
    failed_jobs: int = 0
    by_category: Dict[str, int] = field(default_factory=dict)
    #: unique gadget sites per speculation variant ("pht", "btb", ...).
    by_variant: Dict[str, int] = field(default_factory=dict)
    spec_stats: Dict[str, int] = field(default_factory=dict)
    #: summed worker-side telemetry counter deltas of this group
    #: (observation-only; deliberately *not* serialized by ``to_dict``,
    #: which is the bit-identity basis of the replay tests — a campaign
    #: with telemetry on must summarize identically to one without).
    telemetry_counts: Dict[str, int] = field(default_factory=dict)
    #: the deduplicated reports themselves (not serialized by ``to_dict``;
    #: the experiment harness classifies them against ground truth).
    collection: ReportCollection = field(default_factory=ReportCollection)

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.target, self.tool, self.variant)

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "tool": self.tool,
            "variant": self.variant,
            "executions": self.executions,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "total_cycles": self.total_cycles,
            "total_steps": self.total_steps,
            "corpus_size": self.corpus_size,
            "normal_coverage": self.normal_coverage,
            "speculative_coverage": self.speculative_coverage,
            "unique_gadgets": self.unique_gadgets,
            "raw_reports": self.raw_reports,
            "failed_jobs": self.failed_jobs,
            "by_category": dict(sorted(self.by_category.items())),
            "by_variant": dict(sorted(self.by_variant.items())),
            "spec_stats": dict(sorted(self.spec_stats.items())),
        }

    def as_campaign_result(self) -> CampaignResult:
        """This group's outcome as a :class:`~repro.fuzzing.fuzzer.
        CampaignResult` — the same aggregate a single in-process
        :meth:`Fuzzer.run_chunk` loop would have produced, so campaign and
        plain-fuzzer outputs share one serialization (``to_dict``).  The
        report collection is copied, so merging into the result never
        mutates this summary."""
        reports = ReportCollection()
        reports.extend(self.collection)
        reports.total_raw = self.collection.total_raw
        return CampaignResult(
            executions=self.executions,
            total_cycles=self.total_cycles,
            total_steps=self.total_steps,
            crashes=self.crashes,
            hangs=self.hangs,
            corpus_size=self.corpus_size,
            normal_coverage=self.normal_coverage,
            speculative_coverage=self.speculative_coverage,
            reports=reports,
            spec_stats=dict(self.spec_stats),
        )


@dataclass
class CampaignSummary:
    """The final product of a campaign: per-group rows plus totals."""

    fingerprint: str
    rounds_completed: int
    groups: List[GroupSummary] = field(default_factory=list)

    def row(self, target: str, tool: str, variant: str = "vanilla") -> GroupSummary:
        """Look up one group's row."""
        for group in self.groups:
            if group.key == (target, tool, variant):
                return group
        raise KeyError(f"no group {group_key_str((target, tool, variant))!r}")

    def total_unique_gadgets(self) -> int:
        return sum(group.unique_gadgets for group in self.groups)

    def total_executions(self) -> int:
        return sum(group.executions for group in self.groups)

    def total_failed_jobs(self) -> int:
        return sum(group.failed_jobs for group in self.groups)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form; also the equality basis of the replay tests."""
        return {
            "fingerprint": self.fingerprint,
            "rounds_completed": self.rounds_completed,
            "groups": [group.to_dict() for group in self.groups],
        }

    def format_table(self) -> str:
        """Render the per-target gadget table (paper Table 4 style)."""
        categories = sorted({
            category for group in self.groups for category in group.by_category
        })
        headers = (["target", "tool", "variant", "execs", "crash", "corpus",
                    "cov(n/s)", "gadgets", "raw"] + categories)
        rows: List[List[str]] = []
        for group in self.groups:
            rows.append([
                group.target, group.tool, group.variant,
                str(group.executions), str(group.crashes),
                str(group.corpus_size),
                f"{group.normal_coverage}/{group.speculative_coverage}",
                str(group.unique_gadgets), str(group.raw_reports),
            ] + [str(group.by_category.get(c, 0)) for c in categories])
        widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
                  else len(headers[i]) for i in range(len(headers))]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "  ".join("-" * widths[i] for i in range(len(headers))),
        ]
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        lines.append("")
        total = (
            f"{len(self.groups)} groups, {self.total_executions()} executions, "
            f"{self.total_unique_gadgets()} unique gadget sites "
            f"({self.rounds_completed} rounds)"
        )
        failed = self.total_failed_jobs()
        if failed:
            total += f" — {failed} job(s) FAILED"
        lines.append(total)
        return "\n".join(lines)


def summarize(state: CampaignState) -> CampaignSummary:
    """Build the summary rows from a (possibly resumed) campaign state."""
    summary = CampaignSummary(
        fingerprint=state.fingerprint,
        rounds_completed=state.completed_rounds,
    )
    keys = sorted(set(state.stats) | set(state.corpora) | set(state.store.keys()))
    for key in keys:
        target, tool, variant = key
        stats = state.group_stats(key)
        corpus = state.corpus(key)
        collection = state.store.collection(key)
        summary.groups.append(GroupSummary(
            target=target, tool=tool, variant=variant,
            executions=stats.executions,
            crashes=stats.crashes,
            hangs=stats.hangs,
            total_cycles=stats.total_cycles,
            total_steps=stats.total_steps,
            corpus_size=len(corpus) if corpus is not None else 0,
            normal_coverage=stats.normal_coverage,
            speculative_coverage=stats.speculative_coverage,
            unique_gadgets=len(collection),
            raw_reports=collection.total_raw,
            failed_jobs=stats.failed_jobs,
            by_category=collection.count_by_category(),
            by_variant=collection.count_by_variant(),
            spec_stats=dict(stats.spec_stats),
            telemetry_counts=dict(stats.telemetry_counts),
            collection=collection,
        ))
    return summary
