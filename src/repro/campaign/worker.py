"""Campaign worker: run one fuzzing job and return a picklable result.

Workers are plain top-level functions so the scheduler can fan them out
over a ``multiprocessing`` pool; everything they return is primitive data
(ints, strings, dicts) that crosses process boundaries cheaply.  Compiled
and instrumented binaries are memoised per process — a pool worker that
executes several shards of the same target compiles it once, and the
serial (``workers=1``) path compiles each (target, variant, tool)
combination exactly once per campaign.
"""

from __future__ import annotations

import threading
import time
import traceback as _traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.specfuzz import SpecFuzzConfig, SpecFuzzRewriter, SpecFuzzRuntime
from repro.baselines.spectaint import SpecTaintAnalyzer, SpecTaintConfig
from repro.campaign.spec import JobSpec
from repro.core.config import TeapotConfig
from repro.core.teapot import TeapotRewriter, TeapotRuntime
from repro.fuzzing.fuzzer import Fuzzer, FuzzTarget
from repro.loader.binary_format import TelfBinary
from repro.targets import get_target
from repro.targets.injection import compile_vanilla, inject_gadgets

#: Per-process caches; keyed by (target, variant) and (target, variant, tool).
_BINARY_CACHE: Dict[Tuple[str, str], TelfBinary] = {}
_INSTRUMENTED_CACHE: Dict[Tuple[str, str, str], TelfBinary] = {}
#: Prebuilt binaries substituted for the compiled build of a (target,
#: variant) — the hardening verification loop re-fuzzes a rewritten binary
#: through the ordinary campaign machinery this way (see
#: :func:`binary_override`).
_BINARY_OVERRIDES: Dict[Tuple[str, str], TelfBinary] = {}


@contextmanager
def binary_override(target_name: str, variant: str, binary: TelfBinary):
    """Substitute a prebuilt binary for one (target, variant) combination.

    While the context is active, :func:`compiled_binary` returns ``binary``
    and :func:`instrumented_binary` instruments it afresh on every call
    (bypassing the per-process memo, which would otherwise serve the
    original build).  Intended for serial (``workers=1``) campaigns: a
    pool forked before the override was installed will not see it.
    """
    key = (target_name, variant)
    previous = _BINARY_OVERRIDES.get(key)
    _BINARY_OVERRIDES[key] = binary
    try:
        yield
    finally:
        if previous is None:
            _BINARY_OVERRIDES.pop(key, None)
        else:
            _BINARY_OVERRIDES[key] = previous


def compiled_binary(target_name: str, variant: str) -> TelfBinary:
    """The (memoised) vanilla or injected build of a target."""
    key = (target_name, variant)
    override = _BINARY_OVERRIDES.get(key)
    if override is not None:
        return override
    if key not in _BINARY_CACHE:
        target = get_target(target_name)
        if variant == "injected":
            _BINARY_CACHE[key] = inject_gadgets(target).binary
        elif variant == "vanilla":
            _BINARY_CACHE[key] = compile_vanilla(target)
        else:
            raise ValueError(f"unknown variant {variant!r}")
    return _BINARY_CACHE[key]


def _tool_config(tool: str, variant: str, engine: str = "fast",
                 spec_variant: str = "pht"):
    """The detector configuration for one (tool, variant) combination.

    The ``injected`` variant reproduces the Table 3 methodology for Teapot:
    ordinary taint sources off (only ``attack_input()`` is attacker-direct)
    and the Massage policy off to avoid attacker-indirect noise.

    ``engine`` selects the emulator engine for the tools that support it
    (teapot and specfuzz); SpecTaint models a DBI system with its own
    emulator subclass and always runs on the legacy engine.  ``spec_variant``
    selects the speculation model the job simulates; SpecTaint is PHT-only
    (the campaign spec never emits other variants for it).
    """
    variants = (spec_variant,)
    if tool == "teapot":
        if variant == "injected":
            return TeapotConfig(massage_enabled=False, taint_sources_enabled=False,
                                engine=engine, variants=variants)
        return TeapotConfig(engine=engine, variants=variants)
    if tool == "specfuzz":
        return SpecFuzzConfig(engine=engine, variants=variants)
    if tool == "spectaint":
        return SpecTaintConfig()
    raise ValueError(f"unknown tool {tool!r}")


def instrumented_binary(target_name: str, tool: str, variant: str) -> TelfBinary:
    """The (memoised) tool-instrumented build of a target.

    SpecTaint analyses the original binary (DBI-style), so its
    "instrumented" binary is the plain compiled one.
    """
    def build() -> TelfBinary:
        binary = compiled_binary(target_name, variant)
        config = _tool_config(tool, variant)
        if tool == "teapot":
            binary = TeapotRewriter(config).instrument(binary)
        elif tool == "specfuzz":
            binary = SpecFuzzRewriter(config).instrument(binary)
        return binary

    if (target_name, variant) in _BINARY_OVERRIDES:
        # Overridden builds are never memoised: the cache key cannot tell
        # the override apart from the registry build.
        return build()
    key = (target_name, variant, tool)
    if key not in _INSTRUMENTED_CACHE:
        _INSTRUMENTED_CACHE[key] = build()
    return _INSTRUMENTED_CACHE[key]


def build_runtime(target_name: str, tool: str, variant: str,
                  engine: str = "fast", spec_variant: str = "pht"):
    """A fresh runtime (coverage maps and all) for one job."""
    config = _tool_config(tool, variant, engine, spec_variant)
    binary = instrumented_binary(target_name, tool, variant)
    if tool == "teapot":
        return TeapotRuntime(binary, config=config)
    if tool == "specfuzz":
        return SpecFuzzRuntime(binary, config=config)
    return SpecTaintAnalyzer(binary, config=config)


@dataclass
class WorkerResult:
    """Everything one job hands back to the scheduler (picklable)."""

    job_id: str
    target: str
    tool: str
    variant: str
    shard: int
    round_index: int
    executions: int = 0
    crashes: int = 0
    hangs: int = 0
    total_cycles: int = 0
    total_steps: int = 0
    normal_coverage: int = 0
    speculative_coverage: int = 0
    spec_stats: Dict[str, int] = field(default_factory=dict)
    #: unique gadget reports, serialized (``GadgetReport.to_dict``).
    reports: List[Dict[str, object]] = field(default_factory=list)
    #: raw (pre-dedup) report occurrences, for dedup-ratio accounting.
    raw_reports: int = 0
    #: the worker's final corpus, serialized (``CorpusEntry.to_dict``).
    corpus: List[Dict[str, object]] = field(default_factory=list)
    #: non-empty when the job raised instead of completing; the scheduler
    #: records the failure (``job_failed`` trace event, failed-job counters)
    #: and skips merging the (empty) payload.
    error: str = ""
    #: formatted traceback of the failure, for the trace sink.
    traceback: str = ""
    #: wall-clock seconds the job took (success or failure).
    elapsed_s: float = 0.0
    #: worker-side telemetry counter deltas (``fuzz.*``, ``engine.*``,
    #: ``engine.jit.cache.*``) captured when the job ran in a forked pool
    #: worker of a telemetry-enabled campaign; empty otherwise (in serial
    #: campaigns the parent registry counts these live).  Additive field:
    #: results serialized before PR 8 deserialize with it empty.
    telemetry_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def group(self) -> Tuple[str, str, str]:
        return (self.target, self.tool, self.variant)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (stable ordering, exact round trip)."""
        return {
            "job_id": self.job_id,
            "target": self.target,
            "tool": self.tool,
            "variant": self.variant,
            "shard": self.shard,
            "round_index": self.round_index,
            "executions": self.executions,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "total_cycles": self.total_cycles,
            "total_steps": self.total_steps,
            "normal_coverage": self.normal_coverage,
            "speculative_coverage": self.speculative_coverage,
            "spec_stats": dict(sorted(self.spec_stats.items())),
            "reports": list(self.reports),
            "raw_reports": self.raw_reports,
            "corpus": list(self.corpus),
            "error": self.error,
            "traceback": self.traceback,
            "elapsed_s": self.elapsed_s,
            "telemetry_counts": dict(sorted(self.telemetry_counts.items())),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "WorkerResult":
        """Rebuild a result from :meth:`to_dict` output.

        Tolerates records written before ``telemetry_counts`` existed —
        the field simply comes back empty — so checkpoint-adjacent
        tooling round-trips across versions.
        """
        return cls(
            job_id=str(record["job_id"]),
            target=str(record["target"]),
            tool=str(record["tool"]),
            variant=str(record["variant"]),
            shard=int(record.get("shard", 0)),
            round_index=int(record.get("round_index", 0)),
            executions=int(record.get("executions", 0)),
            crashes=int(record.get("crashes", 0)),
            hangs=int(record.get("hangs", 0)),
            total_cycles=int(record.get("total_cycles", 0)),
            total_steps=int(record.get("total_steps", 0)),
            normal_coverage=int(record.get("normal_coverage", 0)),
            speculative_coverage=int(record.get("speculative_coverage", 0)),
            spec_stats={str(k): int(v)
                        for k, v in record.get("spec_stats", {}).items()},
            reports=list(record.get("reports", [])),
            raw_reports=int(record.get("raw_reports", 0)),
            corpus=list(record.get("corpus", [])),
            error=str(record.get("error", "")),
            traceback=str(record.get("traceback", "")),
            elapsed_s=float(record.get("elapsed_s", 0.0)),
            telemetry_counts={
                str(k): int(v)
                for k, v in record.get("telemetry_counts", {}).items()
            },
        )


def run_job(job: JobSpec, seeds: Optional[Sequence[bytes]] = None) -> WorkerResult:
    """Execute one fuzzing job from scratch.

    ``seeds`` is the corpus shard the scheduler assigned; when omitted the
    target's own seed inputs are used (round 0 of a fresh campaign).
    """
    if seeds is None:
        seeds = list(get_target(job.target).seeds)
    runtime = build_runtime(job.target, job.tool, job.variant, job.engine,
                            job.spec_variant)
    fuzzer = Fuzzer(
        FuzzTarget(runtime),
        seeds=list(seeds),
        seed=job.seed,
        max_input_size=job.max_input_size,
    )
    result = fuzzer.run_chunk(job.iterations)
    return WorkerResult(
        job_id=job.job_id,
        target=job.target,
        tool=job.tool,
        variant=job.variant,
        shard=job.shard,
        round_index=job.round_index,
        executions=result.executions,
        crashes=result.crashes,
        hangs=result.hangs,
        total_cycles=result.total_cycles,
        total_steps=result.total_steps,
        normal_coverage=result.normal_coverage,
        speculative_coverage=result.speculative_coverage,
        spec_stats=dict(result.spec_stats),
        reports=result.reports.to_dicts(),
        raw_reports=result.reports.total_raw,
        corpus=fuzzer.corpus.to_dicts(),
    )


class JobTimeoutError(Exception):
    """A job exceeded its :attr:`JobSpec.timeout_s` wall-clock budget."""


def _run_job_deadline(job: JobSpec,
                      seeds: Optional[List[bytes]]) -> WorkerResult:
    """Run one job, enforcing the job's wall-clock timeout (if any).

    The emulator is pure Python with no cancellation points, so the
    timeout runs the job on a daemon thread and abandons it at the
    deadline: the runaway thread dies with the worker process, and its
    partial results are discarded (a retried job re-derives everything
    from its seed, so abandonment never corrupts campaign state).
    """
    if job.timeout_s <= 0:
        return run_job(job, seeds)
    box: Dict[str, object] = {}

    def call() -> None:
        try:
            box["result"] = run_job(job, seeds)
        except BaseException as exc:  # noqa: BLE001 - crosses the thread
            box["error"] = exc

    thread = threading.Thread(target=call, daemon=True,
                              name=f"job-{job.job_id}")
    thread.start()
    thread.join(job.timeout_s)
    if thread.is_alive():
        raise JobTimeoutError(
            f"job exceeded its {job.timeout_s:g}s wall-clock budget")
    error = box.get("error")
    if error is not None:
        raise error  # type: ignore[misc]
    return box["result"]  # type: ignore[return-value]


def execute_task(task: Tuple[JobSpec, Optional[List[bytes]]]) -> WorkerResult:
    """Pool entry point: unpack one (job, seeds) task and run it.

    A raising job is converted into an error-carrying :class:`WorkerResult`
    instead of propagating (and tearing the whole round down with it): the
    scheduler records the failure and the campaign's other jobs survive.

    In a forked pool worker of a telemetry-enabled campaign (the
    scheduler armed :mod:`repro.telemetry.spool` before creating the
    pool) the job runs under a fresh registry-only telemetry bundle: its
    per-job ``fuzz.*``/``engine.*`` counter deltas travel home in
    :attr:`WorkerResult.telemetry_counts` (merged into the campaign
    totals at round end) and are appended to the metrics spool for live
    mid-round export.  Telemetry is observation-only, so this never
    changes the job's results.
    """
    from repro.telemetry import spool as telemetry_spool
    from repro.telemetry.context import session as telemetry_session

    job, seeds = task
    worker_telemetry = telemetry_spool.worker_telemetry()
    cache_before = (telemetry_spool.jit_cache_stats()
                    if worker_telemetry is not None else None)
    started = time.perf_counter()
    attempts = max(1, job.max_attempts)
    result = None
    for attempt in range(1, attempts + 1):
        try:
            if worker_telemetry is None:
                result = _run_job_deadline(job, seeds)
            else:
                with telemetry_session(worker_telemetry):
                    result = _run_job_deadline(job, seeds)
            break
        except Exception as exc:  # noqa: BLE001 - isolate the failing job
            if attempt < attempts:
                # Deterministic exponential backoff before the retry; a
                # retried job replays from its derived seed, so a
                # transient failure costs time, never correctness.
                time.sleep(job.retry_backoff_s * (2 ** (attempt - 1)))
                continue
            suffix = (f" (after {attempts} attempts)" if attempts > 1 else "")
            result = WorkerResult(
                job_id=job.job_id,
                target=job.target,
                tool=job.tool,
                variant=job.variant,
                shard=job.shard,
                round_index=job.round_index,
                error=f"{type(exc).__name__}: {exc}{suffix}",
                traceback=_traceback.format_exc(),
            )
    result.elapsed_s = time.perf_counter() - started
    if worker_telemetry is not None:
        result.telemetry_counts = telemetry_spool.collect_counts(
            worker_telemetry, cache_before)
        spool_path = telemetry_spool.worker_spool_path()
        if spool_path is not None and result.telemetry_counts:
            telemetry_spool.append_counts(spool_path, result.job_id,
                                          result.telemetry_counts)
    return result


def clear_caches() -> None:
    """Drop the per-process binary caches (tests / memory pressure)."""
    _BINARY_CACHE.clear()
    _INSTRUMENTED_CACHE.clear()
