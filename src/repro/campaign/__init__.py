"""Campaign orchestration: parallel multi-target fuzzing at suite scale.

This subsystem scales the single-loop fuzzer of :mod:`repro.fuzzing` to the
paper's evaluation shape — many (target × tool × variant) campaigns at
once:

* :class:`CampaignSpec` describes the matrix and expands it into
  deterministic :class:`JobSpec` work units;
* :class:`CampaignScheduler` fans the jobs over a ``multiprocessing``
  pool, syncs sharded corpora between rounds, and checkpoints after each;
* :class:`ReportStore` deduplicates gadget reports by site across workers;
* :func:`summarize` renders the Table-3/Table-4-style summary;
* ``python -m repro.campaign`` (or the ``repro-campaign`` console script)
  drives the whole suite from the command line.

See ``docs/campaigns.md`` for the CLI and the JSON checkpoint format.
"""

from repro.campaign.spec import (
    TOOLS,
    VARIANTS,
    CampaignSpec,
    JobSpec,
    derive_seed,
    split_evenly,
)
from repro.campaign.store import CampaignState, GroupStats, ReportStore
from repro.campaign.summary import CampaignSummary, GroupSummary, summarize
from repro.campaign.scheduler import CampaignScheduler, run_campaign
from repro.campaign.worker import WorkerResult, build_runtime, run_job

__all__ = [
    "TOOLS",
    "VARIANTS",
    "CampaignSpec",
    "JobSpec",
    "derive_seed",
    "split_evenly",
    "CampaignState",
    "GroupStats",
    "ReportStore",
    "CampaignSummary",
    "GroupSummary",
    "summarize",
    "CampaignScheduler",
    "run_campaign",
    "WorkerResult",
    "build_runtime",
    "run_job",
]
