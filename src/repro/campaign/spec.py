"""Campaign specifications: the (target × tool × variant) job matrix.

A :class:`CampaignSpec` describes a whole multi-target fuzzing campaign the
way the paper's evaluation describes its 24-hour honggfuzz runs: which
workloads, which detectors, how many executions, and how the work is cut
into corpus-sync rounds and shards.  The spec is pure data — expanding it
into :class:`JobSpec` work units is deterministic, and every job derives
its RNG seed from the campaign seed and its own coordinates, so a campaign
replays identically regardless of how many worker processes execute it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

#: Detector tools a campaign can drive.
TOOLS = ("teapot", "specfuzz", "spectaint")
#: Binary variants: the unmodified workload or the Table-3 injected build.
VARIANTS = ("vanilla", "injected")


def derive_seed(campaign_seed: int, *coords: object) -> int:
    """A deterministic 63-bit RNG seed for one job.

    Uses SHA-256 over the campaign seed and the job coordinates so the
    result is stable across processes and Python versions (unlike
    ``hash()``, which is salted per interpreter).
    """
    text = "|".join(str(part) for part in (campaign_seed, *coords))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def split_evenly(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` integer chunks differing by at most 1.

    Earlier chunks get the remainder, so the split is deterministic:
    ``split_evenly(10, 4) == [3, 3, 2, 2]``.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    base, remainder = divmod(total, parts)
    return [base + (1 if index < remainder else 0) for index in range(parts)]


@dataclass(frozen=True)
class JobSpec:
    """One unit of work: fuzz one shard of one (target, tool, variant)."""

    target: str
    tool: str
    variant: str = "vanilla"
    shard: int = 0
    shard_count: int = 1
    round_index: int = 0
    iterations: int = 0
    seed: int = 0
    max_input_size: int = 1024
    #: emulator engine ("fast"/"jit"/"legacy"); execution detail, never
    #: affects results (the engines are differentially tested to be
    #: identical).
    engine: str = "fast"
    #: speculation variant this job simulates ("pht", "btb", "rsb", "stl").
    #: The third matrix axis: each variant of a group gets its own jobs.
    spec_variant: str = "pht"
    #: wall-clock execution cap in seconds (0 = unlimited, the historic
    #: behavior).  A job past its deadline is abandoned and reported as a
    #: failed job instead of stalling its pool slot forever.
    timeout_s: float = 0.0
    #: how many times the worker attempts the job before reporting the
    #: failure (1 = no retries, the historic behavior).
    max_attempts: int = 1
    #: base of the exponential retry backoff in seconds (attempt ``n``
    #: sleeps ``retry_backoff_s * 2**(n-1)`` before re-running).
    retry_backoff_s: float = 0.5

    @property
    def group(self) -> Tuple[str, str, str]:
        """The campaign group this job contributes to.

        Deliberately *excludes* the speculation variant: all variants of a
        (target, tool, binary-variant) cell share one corpus and one report
        collection — reports stay distinguishable because ``variant`` is
        part of every :class:`~repro.sanitizers.reports.GadgetReport` site.
        Keeping the group key 3-shaped also keeps old campaign checkpoints
        loadable.
        """
        return (self.target, self.tool, self.variant)

    @property
    def job_id(self) -> str:
        """Human-readable identity, e.g. ``jsmn/teapot/vanilla r0 s1/4``."""
        suffix = "" if self.spec_variant == "pht" else f" [{self.spec_variant}]"
        return (f"{self.target}/{self.tool}/{self.variant} "
                f"r{self.round_index} s{self.shard + 1}/{self.shard_count}"
                f"{suffix}")

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form: the wire format of the service job queue.

        The robustness knobs (``timeout_s``/``max_attempts``/
        ``retry_backoff_s``) are serialized only when non-default, so
        records written before they existed round-trip byte-identically.
        """
        record: Dict[str, object] = {
            "target": self.target,
            "tool": self.tool,
            "variant": self.variant,
            "shard": self.shard,
            "shard_count": self.shard_count,
            "round_index": self.round_index,
            "iterations": self.iterations,
            "seed": self.seed,
            "max_input_size": self.max_input_size,
            "engine": self.engine,
            "spec_variant": self.spec_variant,
        }
        if self.timeout_s:
            record["timeout_s"] = self.timeout_s
        if self.max_attempts != 1:
            record["max_attempts"] = self.max_attempts
        if self.retry_backoff_s != 0.5:
            record["retry_backoff_s"] = self.retry_backoff_s
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "JobSpec":
        """Rebuild a job from :meth:`to_dict` output."""
        return cls(
            target=str(record["target"]),
            tool=str(record["tool"]),
            variant=str(record.get("variant", "vanilla")),
            shard=int(record.get("shard", 0)),
            shard_count=int(record.get("shard_count", 1)),
            round_index=int(record.get("round_index", 0)),
            iterations=int(record.get("iterations", 0)),
            seed=int(record.get("seed", 0)),
            max_input_size=int(record.get("max_input_size", 1024)),
            engine=str(record.get("engine", "fast")),
            spec_variant=str(record.get("spec_variant", "pht")),
            timeout_s=float(record.get("timeout_s", 0.0)),
            max_attempts=int(record.get("max_attempts", 1)),
            retry_backoff_s=float(record.get("retry_backoff_s", 0.5)),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A full campaign: the job matrix plus scheduling parameters.

    ``iterations`` is the *total* execution budget per (target, tool,
    variant) group; it is split evenly over ``rounds`` corpus-sync rounds
    and, within each round, over ``shards`` parallel workers.  Only the
    fields hashed by :meth:`fingerprint` affect results — ``workers`` is
    pure execution parallelism and never changes the outcome.
    """

    targets: Tuple[str, ...]
    tools: Tuple[str, ...] = ("teapot",)
    variants: Tuple[str, ...] = ("vanilla",)
    iterations: int = 200
    rounds: int = 2
    shards: int = 1
    seed: int = 0
    max_input_size: int = 1024
    workers: int = 1
    #: When False (the legacy-experiment mode used by
    #: :mod:`repro.analysis.experiments`), every job uses ``seed`` directly
    #: instead of a derived per-job seed; only valid with one shard.
    derive_seeds: bool = True
    #: When True (the CLI default), ``injected``-variant groups are dropped
    #: for targets without attack points; the experiment harness passes
    #: False so every requested program gets a row (injection into a
    #: target with no attack points is a no-op build, as in the paper).
    skip_uninjectable: bool = True
    #: Emulator engine every job runs on ("fast"/"jit"/"legacy").  Like
    #: ``workers`` this is pure execution mechanics: the engines are
    #: differentially tested to produce identical results, so it is
    #: excluded from the checkpoint fingerprint and a campaign may be
    #: resumed on a different engine.
    engine: str = "fast"
    #: Speculation variants: the third matrix axis (alongside target and
    #: tool) — every group fans into one job set per variant.  Excluded
    #: from the checkpoint fingerprint like ``engine``, so a checkpointed
    #: PHT campaign can be resumed with more variants (the extra variants'
    #: jobs simply add reports/executions on top); per-variant results stay
    #: separable because every report site carries its variant.
    spec_variants: Tuple[str, ...] = ("pht",)
    #: per-job wall-clock cap in seconds (0 = unlimited).  Pure execution
    #: robustness, like ``workers``: a timed-out job becomes a
    #: ``failed_jobs`` entry instead of stalling its slot, and the knob is
    #: excluded from the checkpoint fingerprint (and omitted from
    #: checkpoints when left at its default).
    job_timeout_s: float = 0.0
    #: attempts per job before it is recorded as failed (1 = no retries).
    job_max_attempts: int = 1
    #: base of the per-job exponential retry backoff in seconds.
    job_retry_backoff_s: float = 0.5

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not self.derive_seeds and self.shards != 1:
            raise ValueError("derive_seeds=False requires shards == 1")
        for tool in self.tools:
            if tool not in TOOLS:
                raise ValueError(f"unknown tool {tool!r}; expected one of {TOOLS}")
        for variant in self.variants:
            if variant not in VARIANTS:
                raise ValueError(
                    f"unknown variant {variant!r}; expected one of {VARIANTS}")
        from repro.runtime.fastpath import engine_names

        if self.engine not in engine_names():
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"expected one of {engine_names()}")
        if not self.spec_variants:
            raise ValueError("spec_variants must name at least one variant")
        from repro.plugins import model_names

        for spec_variant in self.spec_variants:
            if spec_variant not in model_names():
                raise ValueError(
                    f"unknown speculation variant {spec_variant!r}; "
                    f"expected one of {tuple(model_names())}")
        if self.job_timeout_s < 0:
            raise ValueError("job_timeout_s must be >= 0 (0 = unlimited)")
        if self.job_max_attempts < 1:
            raise ValueError("job_max_attempts must be >= 1")
        if self.job_retry_backoff_s < 0:
            raise ValueError("job_retry_backoff_s must be >= 0")
        if (
            all(tool == "spectaint" for tool in self.tools)
            and "pht" not in self.spec_variants
        ):
            # SpecTaint is PHT-only: this matrix would expand to zero jobs.
            raise ValueError(
                "spectaint simulates conditional-branch (pht) misprediction "
                "only; add 'pht' to spec_variants or include another tool")

    # -- matrix expansion ---------------------------------------------------
    def groups(self) -> List[Tuple[str, str, str]]:
        """All (target, tool, variant) groups, in deterministic order.

        The ``injected`` variant only applies to targets with attack points;
        groups for targets without any are silently dropped.
        """
        from repro.targets import get_target

        result: List[Tuple[str, str, str]] = []
        for target in self.targets:
            for tool in self.tools:
                for variant in self.variants:
                    if (variant == "injected" and self.skip_uninjectable
                            and not get_target(target).attack_points):
                        continue
                    result.append((target, tool, variant))
        return result

    def round_iterations(self, round_index: int) -> int:
        """Execution budget of one round (per group, across all shards)."""
        return split_evenly(self.iterations, self.rounds)[round_index]

    def jobs_for_round(self, round_index: int) -> List[JobSpec]:
        """Expand the matrix into the jobs of one corpus-sync round.

        Every (target, tool, variant) group fans into one job set per
        speculation variant.  PHT jobs keep the exact seed derivation of
        the single-variant world, so a PHT-only campaign is bit-identical
        to historic runs; other variants mix their name into the seed.
        The SpecTaint baseline models a PHT-only tool and gets no jobs for
        other variants.
        """
        jobs: List[JobSpec] = []
        per_shard = split_evenly(self.round_iterations(round_index), self.shards)
        for target, tool, variant in self.groups():
            for spec_variant in self.spec_variants:
                if tool == "spectaint" and spec_variant != "pht":
                    continue
                for shard in range(self.shards):
                    if per_shard[shard] == 0:
                        continue
                    if not self.derive_seeds:
                        seed = self.seed
                    elif spec_variant == "pht":
                        seed = derive_seed(self.seed, target, tool, variant,
                                           round_index, shard)
                    else:
                        seed = derive_seed(self.seed, target, tool, variant,
                                           spec_variant, round_index, shard)
                    jobs.append(JobSpec(
                        target=target, tool=tool, variant=variant,
                        shard=shard, shard_count=self.shards,
                        round_index=round_index,
                        iterations=per_shard[shard],
                        seed=seed,
                        max_input_size=self.max_input_size,
                        engine=self.engine,
                        spec_variant=spec_variant,
                        timeout_s=self.job_timeout_s,
                        max_attempts=self.job_max_attempts,
                        retry_backoff_s=self.job_retry_backoff_s,
                    ))
        return jobs

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form for the checkpoint file.

        The job-robustness knobs are recorded only when non-default, so
        checkpoints written before they existed stay byte-identical.
        """
        record: Dict[str, object] = {
            "targets": list(self.targets),
            "tools": list(self.tools),
            "variants": list(self.variants),
            "iterations": self.iterations,
            "rounds": self.rounds,
            "shards": self.shards,
            "seed": self.seed,
            "max_input_size": self.max_input_size,
            "workers": self.workers,
            "derive_seeds": self.derive_seeds,
            "skip_uninjectable": self.skip_uninjectable,
            "engine": self.engine,
            "spec_variants": list(self.spec_variants),
        }
        if self.job_timeout_s:
            record["job_timeout_s"] = self.job_timeout_s
        if self.job_max_attempts != 1:
            record["job_max_attempts"] = self.job_max_attempts
        if self.job_retry_backoff_s != 0.5:
            record["job_retry_backoff_s"] = self.job_retry_backoff_s
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            targets=tuple(record["targets"]),
            tools=tuple(record.get("tools", ("teapot",))),
            variants=tuple(record.get("variants", ("vanilla",))),
            iterations=int(record.get("iterations", 200)),
            rounds=int(record.get("rounds", 2)),
            shards=int(record.get("shards", 1)),
            seed=int(record.get("seed", 0)),
            max_input_size=int(record.get("max_input_size", 1024)),
            workers=int(record.get("workers", 1)),
            derive_seeds=bool(record.get("derive_seeds", True)),
            skip_uninjectable=bool(record.get("skip_uninjectable", True)),
            engine=str(record.get("engine", "fast")),
            spec_variants=tuple(record.get("spec_variants", ("pht",))),
            job_timeout_s=float(record.get("job_timeout_s", 0.0)),
            job_max_attempts=int(record.get("job_max_attempts", 1)),
            job_retry_backoff_s=float(record.get("job_retry_backoff_s", 0.5)),
        )

    def fingerprint(self) -> str:
        """Hash of every result-affecting field (checkpoint compatibility).

        ``workers`` and ``engine`` are deliberately excluded: resuming a
        4-worker campaign with 1 worker, or a fast-engine campaign on the
        legacy engine (or vice versa), is valid and yields identical
        results.  ``spec_variants`` is excluded too — not because it is
        result-neutral (it is not) but so a checkpointed campaign can be
        *grown* across variant sets: resuming with more variants replays
        the finished rounds from the checkpoint and only adds the new
        variants' findings going forward.
        """
        record = self.to_dict()
        record.pop("workers")
        record.pop("engine")
        record.pop("spec_variants")
        # Robustness knobs (timeouts/retries) are execution mechanics: a
        # job that completes produces the same result at any timeout.
        record.pop("job_timeout_s", None)
        record.pop("job_max_attempts", None)
        record.pop("job_retry_backoff_s", None)
        text = "|".join(f"{key}={record[key]}" for key in sorted(record))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def with_workers(self, workers: int) -> "CampaignSpec":
        """The same campaign executed with a different pool size."""
        return replace(self, workers=workers)
