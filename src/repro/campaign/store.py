"""Report dedup store and campaign checkpoint state.

The :class:`ReportStore` aggregates gadget reports from every worker of a
campaign, deduplicating by gadget site — (channel, attacker, pc) — within
each (target, tool, variant) group, exactly as :class:`ReportCollection`
does within one fuzzing process.  The :class:`CampaignState` bundles the
store with the synchronized corpora and per-group counters and serializes
the whole thing as JSON, which is the checkpoint/resume format of
``python -m repro.campaign``.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fuzzing.corpus import Corpus
from repro.sanitizers.reports import ReportCollection

#: Checkpoint format version; bump on incompatible layout changes.
CHECKPOINT_VERSION = 1

GroupKey = Tuple[str, str, str]


def group_key_str(key: GroupKey) -> str:
    """Encode a (target, tool, variant) key for JSON object keys."""
    return "/".join(key)

def parse_group_key(text: str) -> GroupKey:
    """Decode :func:`group_key_str` output."""
    target, tool, variant = text.split("/")
    return (target, tool, variant)


@dataclass
class GroupStats:
    """Summed execution counters of one (target, tool, variant) group."""

    executions: int = 0
    crashes: int = 0
    hangs: int = 0
    total_cycles: int = 0
    total_steps: int = 0
    #: peak per-shard coverage observed (coverage maps are per-runtime, so
    #: sizes from different shards cannot be summed meaningfully).
    normal_coverage: int = 0
    speculative_coverage: int = 0
    #: jobs that raised instead of completing (their payloads are empty and
    #: contribute nothing to the other counters).
    failed_jobs: int = 0
    spec_stats: Dict[str, int] = field(default_factory=dict)
    #: summed worker-side telemetry counter deltas (``fuzz.*``,
    #: ``engine.*``, ``engine.jit.cache.*`` — see
    #: :attr:`repro.campaign.worker.WorkerResult.telemetry_counts`).
    #: Observation-only bookkeeping: empty in non-telemetry campaigns and
    #: serialized only when non-empty, so checkpoints written with
    #: telemetry off are byte-identical to pre-PR-8 ones.
    telemetry_counts: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "executions": self.executions,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "total_cycles": self.total_cycles,
            "total_steps": self.total_steps,
            "normal_coverage": self.normal_coverage,
            "speculative_coverage": self.speculative_coverage,
            "failed_jobs": self.failed_jobs,
            "spec_stats": dict(sorted(self.spec_stats.items())),
        }
        if self.telemetry_counts:
            record["telemetry_counts"] = dict(
                sorted(self.telemetry_counts.items()))
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "GroupStats":
        return cls(
            executions=int(record.get("executions", 0)),
            crashes=int(record.get("crashes", 0)),
            hangs=int(record.get("hangs", 0)),
            total_cycles=int(record.get("total_cycles", 0)),
            total_steps=int(record.get("total_steps", 0)),
            normal_coverage=int(record.get("normal_coverage", 0)),
            speculative_coverage=int(record.get("speculative_coverage", 0)),
            failed_jobs=int(record.get("failed_jobs", 0)),
            spec_stats=dict(record.get("spec_stats", {})),
            telemetry_counts={
                str(k): int(v)
                for k, v in record.get("telemetry_counts", {}).items()
            },
        )


class ReportStore:
    """Cross-worker gadget-report deduplication, grouped per campaign cell."""

    def __init__(self) -> None:
        self._collections: Dict[GroupKey, ReportCollection] = {}

    def collection(self, key: GroupKey) -> ReportCollection:
        """The (created-on-demand) collection of one group."""
        if key not in self._collections:
            self._collections[key] = ReportCollection()
        return self._collections[key]

    def add_serialized(self, key: GroupKey,
                       report_dicts: List[Dict[str, object]],
                       raw_count: int = 0) -> int:
        """Merge one worker's serialized reports; returns new unique sites."""
        incoming = ReportCollection.from_dicts(report_dicts)
        collection = self.collection(key)
        new = collection.merge(incoming)
        # ``merge`` added ``incoming.total_raw`` (== len(report_dicts));
        # account for occurrences the worker deduplicated locally.
        if raw_count > len(report_dicts):
            collection.total_raw += raw_count - len(report_dicts)
        return new

    def keys(self) -> List[GroupKey]:
        """All groups with at least one report collection, sorted."""
        return sorted(self._collections)

    def unique_count(self, key: GroupKey) -> int:
        """Unique gadget sites of one group (0 if the group is unknown)."""
        collection = self._collections.get(key)
        return len(collection) if collection is not None else 0

    def total_unique(self) -> int:
        """Unique gadget sites across every group."""
        return sum(len(c) for c in self._collections.values())

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (stable ordering)."""
        return {
            group_key_str(key): {
                "reports": self._collections[key].to_dicts(),
                "total_raw": self._collections[key].total_raw,
            }
            for key in self.keys()
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "ReportStore":
        store = cls()
        for key_text, entry in record.items():
            store._collections[parse_group_key(key_text)] = (
                ReportCollection.from_dicts(
                    entry.get("reports", []),
                    total_raw=int(entry.get("total_raw", 0)),
                )
            )
        return store


@dataclass
class CampaignState:
    """Everything a campaign needs to resume: corpora, reports, counters."""

    fingerprint: str
    spec_dict: Dict[str, object]
    completed_rounds: int = 0
    corpora: Dict[GroupKey, Corpus] = field(default_factory=dict)
    stats: Dict[GroupKey, GroupStats] = field(default_factory=dict)
    store: ReportStore = field(default_factory=ReportStore)

    def corpus(self, key: GroupKey) -> Optional[Corpus]:
        return self.corpora.get(key)

    def group_stats(self, key: GroupKey) -> GroupStats:
        if key not in self.stats:
            self.stats[key] = GroupStats()
        return self.stats[key]

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "spec": self.spec_dict,
            "completed_rounds": self.completed_rounds,
            "corpora": {
                group_key_str(key): corpus.to_dicts()
                for key, corpus in sorted(self.corpora.items())
            },
            "stats": {
                group_key_str(key): stats.to_dict()
                for key, stats in sorted(self.stats.items())
            },
            "reports": self.store.to_dict(),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "CampaignState":
        version = int(record.get("version", 0))
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        state = cls(
            fingerprint=str(record["fingerprint"]),
            spec_dict=dict(record["spec"]),
            completed_rounds=int(record.get("completed_rounds", 0)),
        )
        for key_text, entries in record.get("corpora", {}).items():
            state.corpora[parse_group_key(key_text)] = Corpus.from_dicts(entries)
        for key_text, stats in record.get("stats", {}).items():
            state.stats[parse_group_key(key_text)] = GroupStats.from_dict(stats)
        state.store = ReportStore.from_dict(record.get("reports", {}))
        return state

    def save(self, path: str) -> None:
        """Write the checkpoint atomically (tmp file + rename)."""
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(prefix=".campaign-", suffix=".json",
                                        dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    @classmethod
    def load(cls, path: str) -> "CampaignState":
        """Read a checkpoint written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
