"""Campaign scheduler: fan jobs out, sync corpora, checkpoint, summarize.

The scheduler turns a :class:`CampaignSpec` into rounds of
:class:`JobSpec` work units and executes each round over a
``multiprocessing`` pool (falling back to in-process serial execution when
``workers <= 1`` or the platform refuses to give us a pool).  Between
rounds it performs the corpus sync of the paper's distributed-fuzzing
setups: every worker's coverage-novel corpus entries are merged into one
per-group corpus, which is re-sharded round-robin and redistributed for
the next round.  After every round the full campaign state — corpora,
deduplicated reports, counters — is written to a JSON checkpoint, so a
killed campaign resumes from the last completed round and finishes with a
summary identical to an uninterrupted run.

Determinism: job RNG seeds derive from (campaign seed, target, tool,
variant, round, shard) and merging happens in a fixed order, so the pool
size never affects results — only ``shards`` does, and that is part of the
spec fingerprint.
"""

from __future__ import annotations

import multiprocessing
from contextlib import nullcontext
from typing import Callable, List, Optional, Sequence, Tuple

from repro.campaign.spec import CampaignSpec, JobSpec
from repro.campaign.store import CampaignState, GroupKey, group_key_str
from repro.campaign.summary import CampaignSummary, summarize
from repro.campaign.worker import WorkerResult, execute_task
from repro.fuzzing.corpus import Corpus
from repro.plugins import SCHEDULER_REGISTRY, register_scheduler
from repro.targets import get_target
from repro.telemetry import spool as telemetry_spool
from repro.telemetry.context import active as _active_telemetry
from repro.telemetry.metrics import merge_counts

Task = Tuple[JobSpec, Optional[List[bytes]]]
ProgressFn = Callable[[str], None]


def seeds_for_job(state: CampaignState, job: JobSpec) -> Optional[List[bytes]]:
    """The corpus shard assigned to one job.

    Round 0 of a fresh campaign starts from the target's seed inputs;
    later rounds start from the merged cross-worker corpus of the
    previous round, sharded round-robin.  Shared by the pool scheduler
    and the service dispatcher so both hand out identical shards.
    """
    corpus = state.corpus(job.group)
    if corpus is None:
        corpus = Corpus(list(get_target(job.target).seeds))
    return corpus.shards(job.shard_count)[job.shard]


def merge_worker_result(state: CampaignState, result: WorkerResult,
                        telemetry=None,
                        progress: Optional[ProgressFn] = None) -> int:
    """Fold one worker result into the campaign state; returns new sites.

    This is the single merge rule of the whole system — the pool
    scheduler applies it per round in job order, and the service's
    streaming ingestor applies it result-by-result (also in job order) —
    so every execution strategy produces bit-identical campaign state.
    The rules (sum counters, max the coverage gauges, dedup reports by
    site) mirror :meth:`repro.fuzzing.fuzzer.CampaignResult.merge`; keep
    the two in step.
    """
    key: GroupKey = result.group
    stats = state.group_stats(key)
    if result.telemetry_counts:
        # Worker-side counter deltas (fuzz.*, engine.*,
        # engine.jit.cache.*) travel home in the result; fold them into
        # the group stats and the parent registry so campaign totals
        # cover forked workers too.  Done for failing jobs as well —
        # they may have executed inputs before raising.
        merge_counts(stats.telemetry_counts, result.telemetry_counts)
        if telemetry is not None:
            for name, value in result.telemetry_counts.items():
                telemetry.registry.counter(name).inc(value)
    if result.error:
        # A raising job contributes nothing but its failure record.
        stats.failed_jobs += 1
        if progress is not None:
            progress(f"job {result.job_id} FAILED: {result.error}")
        if telemetry is not None:
            telemetry.registry.counter("campaign.jobs_failed").inc()
            telemetry.event(
                "job_failed",
                job_id=result.job_id,
                group=group_key_str(key),
                error=result.error,
                traceback=result.traceback,
                elapsed_s=round(result.elapsed_s, 6),
            )
        return 0
    stats.executions += result.executions
    stats.crashes += result.crashes
    stats.hangs += result.hangs
    stats.total_cycles += result.total_cycles
    stats.total_steps += result.total_steps
    stats.normal_coverage = max(stats.normal_coverage,
                                result.normal_coverage)
    stats.speculative_coverage = max(stats.speculative_coverage,
                                     result.speculative_coverage)
    merge_counts(stats.spec_stats, result.spec_stats)
    new_sites = state.store.add_serialized(key, result.reports,
                                           result.raw_reports)

    merged = state.corpora.get(key)
    incoming = Corpus.from_dicts(result.corpus)
    if merged is None:
        state.corpora[key] = incoming
    else:
        merged.merge(incoming)

    if telemetry is not None:
        registry = telemetry.registry
        registry.counter("campaign.executions").inc(result.executions)
        registry.counter("campaign.jobs_done").inc()
        registry.counter("campaign.reports_raw").inc(result.raw_reports)
        registry.counter("campaign.reports_unique").inc(new_sites)
        registry.counter("campaign.dedup_hits").inc(
            max(0, len(result.reports) - new_sites)
        )
        site_totals: dict = {}
        for group in state.store.keys():
            merge_counts(
                site_totals,
                state.store.collection(group).count_by_variant(),
            )
        for variant, count in site_totals.items():
            registry.gauge(f"campaign.sites.{variant}").set(count)
        telemetry.event(
            "job",
            job_id=result.job_id,
            group=group_key_str(key),
            executions=result.executions,
            new_sites=new_sites,
            elapsed_s=round(result.elapsed_s, 6),
        )
        if telemetry.heartbeat is not None:
            telemetry.heartbeat.tick()
    return new_sites


@register_scheduler("pool")
class CampaignScheduler:
    """Runs a whole campaign matrix with corpus sync and checkpointing."""

    def __init__(
        self,
        spec: CampaignSpec,
        checkpoint_path: Optional[str] = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.spec = spec
        self.checkpoint_path = checkpoint_path
        self._progress = progress or (lambda message: None)
        #: True when the last round ran through a real process pool.
        self.used_pool = False
        self._pool = None
        self._pool_unavailable = False

    # -- public API ---------------------------------------------------------
    def run(self, resume: bool = False) -> CampaignSummary:
        """Execute (or finish) the campaign and return its summary."""
        state = self._initial_state(resume)
        telemetry = _active_telemetry()
        if telemetry is not None:
            telemetry.event(
                "campaign_start",
                fingerprint=state.fingerprint,
                rounds=self.spec.rounds,
                completed_rounds=state.completed_rounds,
                workers=self.spec.workers,
            )
        if telemetry is not None and telemetry.spool is not None:
            # Arm the spool *before* the pool exists: forked workers
            # inherit the module globals and start appending per-job
            # counter deltas (see repro.telemetry.spool).
            telemetry_spool.enable(telemetry.spool.path)
        try:
            for round_index in range(state.completed_rounds, self.spec.rounds):
                jobs = self.spec.jobs_for_round(round_index)
                tasks = [(job, self._seeds_for(state, job)) for job in jobs]
                self._progress(
                    f"round {round_index + 1}/{self.spec.rounds}: "
                    f"{len(tasks)} jobs over {self.spec.workers} worker(s)"
                )
                round_span = (telemetry.span(f"round:{round_index}")
                              if telemetry is not None else nullcontext())
                with round_span:
                    if telemetry is not None:
                        registry = telemetry.registry
                        registry.counter("campaign.jobs_queued").inc(len(tasks))
                        registry.gauge("campaign.jobs_running").set(len(tasks))
                    results = self._map(tasks)
                    if telemetry is not None:
                        registry.gauge("campaign.jobs_running").set(0)
                    self._merge_round(state, results)
                state.completed_rounds = round_index + 1
                if telemetry is not None:
                    registry = telemetry.registry
                    registry.gauge("campaign.rounds_completed").set(
                        state.completed_rounds
                    )
                    if telemetry.heartbeat is not None:
                        telemetry.heartbeat.maybe_beat(force=True)
                if self.checkpoint_path:
                    state.save(self.checkpoint_path)
                    if telemetry is not None:
                        telemetry.registry.counter(
                            "campaign.checkpoint_writes"
                        ).inc()
                    self._progress(f"checkpoint written to {self.checkpoint_path}")
                if telemetry is not None and telemetry.run_dir is not None:
                    telemetry.run_dir.write_metrics_snapshot(telemetry)
        finally:
            self._close_pool()
            telemetry_spool.disable()
        return summarize(state)

    # -- state --------------------------------------------------------------
    def _initial_state(self, resume: bool) -> CampaignState:
        fingerprint = self.spec.fingerprint()
        if resume and self.checkpoint_path:
            try:
                state = CampaignState.load(self.checkpoint_path)
            except FileNotFoundError:
                state = None
            if state is not None:
                if state.fingerprint != fingerprint:
                    raise ValueError(
                        "checkpoint was produced by a different campaign spec "
                        f"(fingerprint {state.fingerprint} != {fingerprint}); "
                        "refusing to resume"
                    )
                self._progress(
                    f"resuming after {state.completed_rounds} completed round(s)"
                )
                return state
        return CampaignState(fingerprint=fingerprint,
                             spec_dict=self.spec.to_dict())

    def _seeds_for(self, state: CampaignState, job: JobSpec) -> Optional[List[bytes]]:
        return seeds_for_job(state, job)

    def _merge_round(self, state: CampaignState,
                     results: Sequence[WorkerResult]) -> None:
        """Fold one round's worker results into the campaign state.

        Results arrive in job order (``pool.map`` preserves it), so the
        merge is deterministic regardless of completion order.
        """
        telemetry = _active_telemetry()
        for result in results:
            merge_worker_result(state, result, telemetry=telemetry,
                                progress=self._progress)
        if telemetry is not None and telemetry.spool is not None:
            # Every spool line of this round is complete (pool.map blocks
            # until all results are in) and its counts were just merged
            # via the WorkerResults above — restart the live tail empty.
            telemetry.spool.consume()

    # -- execution ----------------------------------------------------------
    def _map(self, tasks: List[Task]) -> List[WorkerResult]:
        """Run the round's tasks, through a pool when it pays off."""
        self.used_pool = False
        if self.spec.workers > 1 and len(tasks) > 1:
            pool = self._ensure_pool()
            if pool is not None:
                self.used_pool = True
                return pool.map(execute_task, tasks)
        return [execute_task(task) for task in tasks]

    def _ensure_pool(self):
        """The campaign-lifetime worker pool (created once, reused per round).

        Keeping one pool alive across rounds lets the forked workers keep
        their per-process compile/instrument caches warm instead of
        recompiling every binary each round.
        """
        if self._pool is None and not self._pool_unavailable:
            try:
                self._pool = multiprocessing.get_context("fork").Pool(
                    self.spec.workers
                )
            except (OSError, ValueError, ImportError, AttributeError) as error:
                # Sandboxes without working semaphores, platforms without
                # fork, etc.: the campaign still completes, just serially.
                self._pool_unavailable = True
                self._progress(f"worker pool unavailable ({error}); "
                               "falling back to serial execution")
        return self._pool

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


@register_scheduler("serial")
class SerialCampaignScheduler(CampaignScheduler):
    """A scheduler that never creates a process pool.

    Results are identical to :class:`CampaignScheduler` (the pool never
    affects outcomes, only wall-clock time); this variant exists for
    sandboxes where ``multiprocessing`` must not even be attempted, and as
    the smallest possible example of a scheduler plugin.
    """

    def _ensure_pool(self):
        return None


def run_campaign(
    spec: CampaignSpec,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    scheduler: str = "pool",
) -> CampaignSummary:
    """Convenience wrapper: schedule and run one campaign.

    ``scheduler`` names a plugin from
    :data:`repro.plugins.SCHEDULER_REGISTRY` (``"pool"`` — the default
    multiprocessing scheduler — ``"serial"``, ``"service"`` — the durable
    queue + worker fleet of :mod:`repro.service` — plus any
    ``@register_scheduler`` plugin).
    """
    if scheduler not in SCHEDULER_REGISTRY:
        # Lazily pull in the subsystems that register schedulers on
        # import (repro.service registers "service") before rejecting.
        from repro.plugins import scheduler_names

        scheduler_names()
    scheduler_cls = SCHEDULER_REGISTRY.get(scheduler)
    runner = scheduler_cls(spec, checkpoint_path=checkpoint_path,
                           progress=progress)
    return runner.run(resume=resume)
