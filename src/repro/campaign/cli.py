"""``python -m repro.campaign`` / ``repro-campaign``: the campaign CLI.

Runs a whole-suite fuzzing matrix and prints a Table-4-style per-target
gadget table.  Examples::

    # The full target suite, 4 worker processes, 200 executions per group.
    python -m repro.campaign --targets all --workers 4 --iterations 200

    # A sharded teapot-vs-specfuzz comparison with checkpointing.
    python -m repro.campaign --targets jsmn,libyaml --tools teapot,specfuzz \
        --shards 2 --rounds 3 --checkpoint /tmp/campaign.json

    # Kill it at any point, then finish from the last completed round:
    python -m repro.campaign --targets jsmn,libyaml --tools teapot,specfuzz \
        --shards 2 --rounds 3 --checkpoint /tmp/campaign.json --resume
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional, Sequence

from repro.campaign.scheduler import run_campaign
from repro.campaign.spec import TOOLS, VARIANTS, CampaignSpec
from repro.plugins import scheduler_names
from repro.runtime.fastpath import engine_names
from repro.targets import injectable_targets, runnable_targets


def _parse_list(text: str, choices: Sequence[str], what: str) -> List[str]:
    values = [item.strip() for item in text.split(",") if item.strip()]
    if not values:
        raise argparse.ArgumentTypeError(f"no {what} given")
    for value in values:
        if value not in choices:
            raise argparse.ArgumentTypeError(
                f"unknown {what} {value!r}; choose from {', '.join(choices)}"
            )
    return values


def build_parser(prog: str = "repro-campaign") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Parallel multi-target Spectre-gadget fuzzing campaigns.",
    )
    parser.add_argument(
        "--list-targets", action="store_true",
        help="print the registered target names (and which support the "
             "'injected' variant) and exit")
    parser.add_argument(
        "--targets", default="all",
        help="comma-separated target names, or 'all' for the whole suite "
             f"({', '.join(runnable_targets())})")
    parser.add_argument(
        "--tools", default="teapot",
        help=f"comma-separated detectors ({', '.join(TOOLS)}); default: teapot")
    parser.add_argument(
        "--variants", default="vanilla",
        help=f"comma-separated binary variants ({', '.join(VARIANTS)}); "
             "'injected' reproduces the Table 3 build and is skipped for "
             "targets without attack points")
    parser.add_argument(
        "--spec-variants", default="pht",
        help="comma-separated speculation variants to simulate (pht, btb, "
             "rsb, stl, or any registered model; default: pht)")
    parser.add_argument("--iterations", type=int, default=200,
                        help="total executions per (target, tool, variant) "
                             "group (default: 200)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (default: 1 = serial)")
    parser.add_argument("--shards", type=int, default=0,
                        help="corpus shards per group (default: = workers); "
                             "affects results, unlike --workers")
    parser.add_argument("--rounds", type=int, default=2,
                        help="corpus-sync rounds (default: 2)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default: 0)")
    parser.add_argument("--max-input-size", type=int, default=1024,
                        help="mutation size cap in bytes (default: 1024)")
    parser.add_argument("--engine", choices=tuple(engine_names()),
                        default="fast",
                        help="emulator engine (default: fast); every engine "
                             "produces identical results — jit is the "
                             "block-compiled throughput tier, legacy keeps "
                             "the reference implementation selectable")
    parser.add_argument("--scheduler", choices=tuple(scheduler_names()),
                        default="pool",
                        help="campaign scheduler plugin (default: pool — "
                             "the multiprocessing pool; serial never forks; "
                             "service runs the durable job queue + worker "
                             "fleet of repro.service); results are "
                             "identical across schedulers")
    parser.add_argument("--job-timeout", type=float, default=0.0,
                        metavar="SECONDS", dest="job_timeout",
                        help="per-job wall-clock cap (default: 0 = "
                             "unlimited); a timed-out job is recorded as "
                             "failed instead of stalling its worker slot")
    parser.add_argument("--job-retries", type=int, default=0, metavar="N",
                        dest="job_retries",
                        help="retries per failing/timed-out job with "
                             "exponential backoff (default: 0)")
    parser.add_argument("--job-retry-backoff", type=float, default=0.5,
                        metavar="SECONDS", dest="job_retry_backoff",
                        help="base of the per-job retry backoff "
                             "(default: 0.5)")
    parser.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="write a JSON checkpoint after every round")
    parser.add_argument("--resume", action="store_true",
                        help="resume from --checkpoint if it exists")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the summary as JSON ('-' for stdout)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    parser.add_argument("--progress", action="store_true",
                        help="print a live progress heartbeat (execs/s, "
                             "per-variant site counts) to stderr")
    parser.add_argument("--progress-interval", type=float, default=5.0,
                        metavar="SECONDS",
                        help="minimum seconds between heartbeats "
                             "(default: 5)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a structured JSONL telemetry trace "
                             "(inspect with `repro stats PATH`)")
    parser.add_argument("--serve", metavar="[HOST:]PORT", nargs="?",
                        const="", default=None,
                        help="serve live /metrics (Prometheus text format) "
                             "and /status over HTTP for the duration of "
                             "the campaign (default 127.0.0.1:9753; "
                             "port 0 = OS-assigned)")
    parser.add_argument("--run-dir", metavar="ROOT", nargs="?",
                        const="runs", default=None, dest="run_dir",
                        help="record the campaign into a durable run "
                             "directory under ROOT (default: runs/) — "
                             "manifest, trace, metrics spool/snapshots; "
                             "browse with `repro runs`, serve with "
                             "`repro monitor`")
    return parser


def main(argv: Optional[Sequence[str]] = None,
         prog: str = "repro-campaign") -> int:
    parser = build_parser(prog=prog)
    args = parser.parse_args(argv)

    if args.list_targets:
        print("note: --list-targets is deprecated; use `repro targets` "
              "(--json for machine-readable output)", file=sys.stderr)
        injectable = set(injectable_targets())
        print("runnable targets:")
        for name in runnable_targets():
            note = "  (supports --variants injected)" if name in injectable else ""
            print(f"  {name}{note}")
        return 0

    try:
        if args.targets.strip() == "all":
            targets = runnable_targets()
        else:
            targets = _parse_list(args.targets, runnable_targets(), "target")
        tools = _parse_list(args.tools, TOOLS, "tool")
        variants = _parse_list(args.variants, VARIANTS, "variant")
        from repro.plugins import model_names

        spec_variants = _parse_list(args.spec_variants, model_names(),
                                    "speculation variant")
    except argparse.ArgumentTypeError as error:
        parser.error(str(error))
    shards = args.shards if args.shards > 0 else max(1, args.workers)
    if args.shards <= 0 and args.resume and args.checkpoint:
        # --shards defaults to --workers, but shard count is part of the
        # campaign identity while worker count is not: when resuming,
        # default to the checkpoint's shard count so a 4-worker campaign
        # can be finished with any --workers value.
        try:
            with open(args.checkpoint, "r", encoding="utf-8") as handle:
                shards = int(json.load(handle)["spec"]["shards"])
        except (OSError, ValueError, KeyError, TypeError):
            pass  # no/unreadable checkpoint: keep the workers-based default

    try:
        spec = CampaignSpec(
            targets=tuple(targets),
            tools=tuple(tools),
            variants=tuple(variants),
            iterations=args.iterations,
            rounds=args.rounds,
            shards=shards,
            seed=args.seed,
            max_input_size=args.max_input_size,
            workers=max(1, args.workers),
            engine=args.engine,
            spec_variants=tuple(spec_variants),
            job_timeout_s=max(0.0, args.job_timeout),
            job_max_attempts=1 + max(0, args.job_retries),
            job_retry_backoff_s=max(0.0, args.job_retry_backoff),
        )
    except ValueError as error:
        parser.error(str(error))

    progress = None if args.quiet else (
        lambda message: print(f"[campaign] {message}", file=sys.stderr)
    )
    telemetry = None
    exporter = None
    run_dir = None
    spool_tmp = None
    observatory = args.serve is not None or args.run_dir is not None
    if args.progress or args.trace or observatory:
        from repro.telemetry import Telemetry
        from repro.telemetry.context import session as telemetry_session

        run_registry = None
        trace = args.trace
        if args.run_dir is not None:
            from repro.telemetry.runs import RunRegistry

            run_registry = RunRegistry(args.run_dir)
            run_dir = run_registry.create_run(
                command="campaign",
                target=",".join(targets),
                engine=args.engine,
                variants=list(spec_variants),
                config=spec.to_dict(),
                extra={"fingerprint": spec.fingerprint()},
            )
            if trace is None:
                trace = run_dir.trace_path
            if not args.quiet:
                print(f"[campaign] recording run {run_dir.run_id} under "
                      f"{run_dir.path}", file=sys.stderr)
        telemetry = Telemetry.create(
            trace=trace,
            progress=args.progress,
            interval=args.progress_interval,
            context_info={"command": "campaign",
                          "fingerprint": spec.fingerprint()},
        )
        if run_dir is not None:
            from repro.telemetry.spool import MetricsSpool

            telemetry.run_dir = run_dir
            telemetry.spool = MetricsSpool(run_dir.spool_path)
        if args.serve is not None:
            import tempfile

            from repro.telemetry.export import parse_address, serve_metrics
            from repro.telemetry.spool import MetricsSpool

            if telemetry.spool is None:
                # Live mid-round counters need a spool file even without
                # a run directory.
                fd, spool_tmp = tempfile.mkstemp(prefix="repro-spool-",
                                                 suffix=".jsonl")
                os.close(fd)
                telemetry.spool = MetricsSpool(spool_tmp)
            host, port = parse_address(args.serve)
            exporter = serve_metrics(telemetry, registry=run_registry,
                                     host=host, port=port)
            if not args.quiet:
                print(f"[campaign] serving /metrics and /status on "
                      f"{exporter.url}", file=sys.stderr)
    started = time.time()
    status = "completed"
    try:
        if telemetry is not None:
            with telemetry_session(telemetry):
                summary = run_campaign(spec, checkpoint_path=args.checkpoint,
                                       resume=args.resume, progress=progress,
                                       scheduler=args.scheduler)
        else:
            summary = run_campaign(spec, checkpoint_path=args.checkpoint,
                                   resume=args.resume, progress=progress,
                                   scheduler=args.scheduler)
    except ValueError as error:
        status = "failed"
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BaseException:
        status = "failed"
        raise
    finally:
        if exporter is not None:
            exporter.stop()
        if run_dir is not None and telemetry is not None:
            try:
                run_dir.write_metrics_snapshot(telemetry)
                run_dir.finalize(status=status)
            except OSError:
                pass
        if spool_tmp is not None:
            try:
                os.unlink(spool_tmp)
            except OSError:
                pass
        if telemetry is not None:
            telemetry.close()

    elapsed = time.time() - started
    if run_dir is not None:
        try:
            with open(os.path.join(run_dir.path, "summary.json"), "w",
                      encoding="utf-8") as handle:
                handle.write(json.dumps(summary.to_dict(), indent=1,
                                        sort_keys=True) + "\n")
        except OSError:
            pass
    # Write the JSON artifact before touching stdout: a truncated pipe
    # (e.g. `... | head`) kills the process with BrokenPipeError and must
    # not cost the caller their summary file.
    if args.json and args.json != "-":
        payload = json.dumps(summary.to_dict(), indent=1, sort_keys=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")

    try:
        print(summary.format_table())
        if not args.quiet:
            print(f"[campaign] finished in {elapsed:.1f}s "
                  f"(fingerprint {summary.fingerprint})", file=sys.stderr)
        if args.json == "-":
            print(json.dumps(summary.to_dict(), indent=1, sort_keys=True))
        return 0
    except BrokenPipeError:
        # The reader went away (`... | head`); the campaign and any --json
        # artifact are already safe on disk, so exit quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def deprecated_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the deprecated ``repro-campaign`` console script."""
    print("repro-campaign is deprecated; use `repro campaign` "
          "(same arguments) — see docs/api.md", file=sys.stderr)
    return main(argv)


if __name__ == "__main__":
    sys.exit(main())
