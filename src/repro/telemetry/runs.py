"""The durable run registry: one directory per campaign/pipeline run.

A :class:`RunDirectory` is the on-disk record of one run::

    runs/<run-id>/
        manifest.json        # kind/schema tags, identity, status, digest
        trace.jsonl          # span/event trace (repro.telemetry/trace v1)
        spool.jsonl          # worker metrics spool (live counter deltas)
        metrics/
            snapshot-000001.json   # periodic registry snapshots
            latest.json            # atomically updated copy of the newest
        result.json          # final RunResult artifact (repro.api/run-result)

The manifest follows the repo-wide versioned-artifact pattern (``kind`` +
``schema_version`` headers); its ``config_digest`` is a sha256 over the
canonical JSON of the run's configuration, so two runs of the same setup
are recognizably siblings.  Metrics snapshots record the spool offset
they cover, which lets a *separate* process (``repro monitor --run``)
serve live totals: latest snapshot plus every spool line past its
recorded offset.

The :class:`RunRegistry` scans a root directory (default ``runs/``) and
backs the ``repro runs list/show/gc`` commands.  Everything here is
observation-only bookkeeping — a run behaves identically with or without
a run directory attached.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from typing import Dict, List, Optional

from repro._version import __version__

#: Artifact type tag of ``manifest.json``.
RUN_KIND = "repro.telemetry/run"
#: Bump on any backwards-incompatible manifest layout change.
RUN_SCHEMA_VERSION = 1

#: Default registry root (relative to the working directory).
DEFAULT_RUNS_ROOT = "runs"


class RunSchemaError(ValueError):
    """Raised when a loaded manifest is not a compatible run record."""


def config_digest(config: Dict[str, object]) -> str:
    """sha256 over the canonical JSON form of a configuration mapping."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _utc_stamp(when: Optional[float] = None) -> str:
    """ISO-8601 UTC timestamp (second precision)."""
    moment = time.time() if when is None else when
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(moment))


def _new_run_id() -> str:
    """A sortable, collision-resistant run id: UTC time + pid."""
    return time.strftime("%Y%m%d-%H%M%S", time.gmtime()) + f"-{os.getpid()}"


def _atomic_write_json(path: str, record: Dict[str, object]) -> None:
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)


class RunDirectory:
    """One run's durable directory: manifest, trace, spool, snapshots."""

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        self.run_id = os.path.basename(self.path)
        self._snapshot_seq = 0

    # -- layout -------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.path, "manifest.json")

    @property
    def trace_path(self) -> str:
        return os.path.join(self.path, "trace.jsonl")

    @property
    def spool_path(self) -> str:
        return os.path.join(self.path, "spool.jsonl")

    @property
    def metrics_dir(self) -> str:
        return os.path.join(self.path, "metrics")

    @property
    def result_path(self) -> str:
        return os.path.join(self.path, "result.json")

    # -- creation -----------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: str = DEFAULT_RUNS_ROOT,
        run_id: Optional[str] = None,
        command: str = "",
        target: Optional[str] = None,
        engine: Optional[str] = None,
        variants: Optional[List[str]] = None,
        config: Optional[Dict[str, object]] = None,
        extra: Optional[Dict[str, object]] = None,
    ) -> "RunDirectory":
        """Allocate a fresh run directory and write its manifest.

        ``config`` is any JSON-able mapping describing the run (a campaign
        spec dict, pipeline options, ...); only its digest and the mapping
        itself land in the manifest.
        """
        run_id = run_id or _new_run_id()
        path = os.path.join(root, run_id)
        suffix = 0
        while os.path.exists(path):
            # Two runs in the same second from the same pid (tests do
            # this): disambiguate with a short suffix.
            suffix += 1
            path = os.path.join(root, f"{run_id}.{suffix}")
        if suffix:
            run_id = f"{run_id}.{suffix}"
        run = cls(path)
        os.makedirs(run.metrics_dir, exist_ok=True)
        manifest: Dict[str, object] = {
            "kind": RUN_KIND,
            "schema_version": RUN_SCHEMA_VERSION,
            "run_id": run_id,
            "version": __version__,
            "created_at": _utc_stamp(),
            "pid": os.getpid(),
            "command": command,
            "target": target,
            "engine": engine,
            "variants": list(variants) if variants is not None else [],
            "config": dict(config) if config is not None else {},
            "config_digest": config_digest(config or {}),
            "status": "running",
        }
        if extra:
            manifest.update(extra)
        _atomic_write_json(run.manifest_path, manifest)
        return run

    # -- manifest -----------------------------------------------------------
    def manifest(self) -> Dict[str, object]:
        """Load and validate ``manifest.json``.

        Raises:
            RunSchemaError: missing/incompatible kind or schema tags.
        """
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError) as error:
            raise RunSchemaError(
                f"unreadable run manifest {self.manifest_path}: {error}")
        if record.get("kind") != RUN_KIND:
            raise RunSchemaError(
                f"not a {RUN_KIND} manifest (kind={record.get('kind')!r})")
        version = int(record.get("schema_version", 0))
        if version < 1 or version > RUN_SCHEMA_VERSION:
            raise RunSchemaError(
                f"unsupported run schema_version {version} "
                f"(this library understands 1..{RUN_SCHEMA_VERSION})")
        return record

    def update_manifest(self, **fields: object) -> Dict[str, object]:
        """Merge fields into the manifest (atomic rewrite)."""
        record = self.manifest()
        record.update(fields)
        _atomic_write_json(self.manifest_path, record)
        return record

    def finalize(self, status: str = "completed",
                 **fields: object) -> Dict[str, object]:
        """Stamp the run's terminal status and finish time."""
        return self.update_manifest(status=status,
                                    finished_at=_utc_stamp(), **fields)

    # -- metrics snapshots ---------------------------------------------------
    def write_metrics_snapshot(self, telemetry) -> str:
        """Persist one registry snapshot (plus covered spool offset).

        Called by the campaign scheduler after each round merge and by
        pipeline sessions between stages.  The recorded ``spool_offset``
        is the byte offset the snapshot's numbers already cover, so an
        external reader adds only spool lines *past* it.
        """
        self._snapshot_seq += 1
        spool = getattr(telemetry, "spool", None)
        registry = telemetry.registry
        types: Dict[str, str] = {}
        for name in registry.counters():
            types[name] = "counter"
        for name in registry.gauges():
            types[name] = "gauge"
        for name in registry.histograms():
            types[name] = "histogram"
        record: Dict[str, object] = {
            "seq": self._snapshot_seq,
            "at": _utc_stamp(),
            "metrics": registry.snapshot(),
            "types": dict(sorted(types.items())),
            "spool_offset": spool.consumed_offset if spool is not None else 0,
        }
        os.makedirs(self.metrics_dir, exist_ok=True)
        path = os.path.join(self.metrics_dir,
                            f"snapshot-{self._snapshot_seq:06d}.json")
        _atomic_write_json(path, record)
        _atomic_write_json(os.path.join(self.metrics_dir, "latest.json"),
                           record)
        return path

    def latest_metrics(self) -> Optional[Dict[str, object]]:
        """The newest metrics snapshot (None before the first write)."""
        path = os.path.join(self.metrics_dir, "latest.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def live_counts(self) -> Dict[str, object]:
        """Latest snapshot merged with the spool tail past its offset.

        This is the cross-process flavour of
        :meth:`repro.telemetry.Telemetry.merged_counts`: what ``repro
        monitor --run`` serves while the campaign runs in another
        process.
        """
        from repro.telemetry import spool as telemetry_spool

        snapshot = self.latest_metrics() or {"metrics": {}, "spool_offset": 0}
        merged: Dict[str, object] = {
            name: value
            for name, value in dict(snapshot.get("metrics", {})).items()
            if isinstance(value, (int, float))
        }
        offset = int(snapshot.get("spool_offset", 0))
        records, _ = telemetry_spool.read_records(self.spool_path, offset)
        for name, value in telemetry_spool.sum_counts(records).items():
            base = merged.get(name, 0)
            merged[name] = (base + value
                            if isinstance(base, (int, float)) else value)
        return dict(sorted(merged.items()))

    # -- result -------------------------------------------------------------
    def write_result(self, result) -> str:
        """Store the final :class:`repro.api.RunResult` artifact."""
        result.save(self.result_path)
        return self.result_path


class RunRegistry:
    """Scan/list/prune the run directories under one root."""

    def __init__(self, root: str = DEFAULT_RUNS_ROOT) -> None:
        self.root = root

    def create_run(self, **kwargs) -> RunDirectory:
        """Allocate a new run directory (see :meth:`RunDirectory.create`)."""
        return RunDirectory.create(root=self.root, **kwargs)

    def get(self, run_id: str) -> RunDirectory:
        """The run directory of one id (raises ``KeyError`` if absent)."""
        path = os.path.join(self.root, run_id)
        if not os.path.isfile(os.path.join(path, "manifest.json")):
            raise KeyError(f"no run {run_id!r} under {self.root}")
        return RunDirectory(path)

    def runs(self) -> List[RunDirectory]:
        """Every valid run directory, newest first (by run id)."""
        try:
            entries = sorted(os.listdir(self.root), reverse=True)
        except OSError:
            return []
        found: List[RunDirectory] = []
        for entry in entries:
            path = os.path.join(self.root, entry)
            if os.path.isfile(os.path.join(path, "manifest.json")):
                found.append(RunDirectory(path))
        return found

    def list_manifests(self) -> List[Dict[str, object]]:
        """Manifests of every readable run, newest first.

        Unreadable/foreign manifests are skipped, not fatal — the
        registry root may contain unrelated directories.
        """
        manifests: List[Dict[str, object]] = []
        for run in self.runs():
            try:
                manifests.append(run.manifest())
            except RunSchemaError:
                continue
        return manifests

    def gc(self, keep: int = 10, dry_run: bool = False) -> List[str]:
        """Delete all but the newest ``keep`` *finished* runs.

        Runs still marked ``running`` are never collected (a live
        campaign must not lose its directory); returns the removed (or,
        with ``dry_run``, would-be-removed) run ids, oldest first.
        """
        finished = [run for run in self.runs()
                    if self._status(run) != "running"]
        victims = finished[keep:] if keep > 0 else finished
        removed: List[str] = []
        for run in reversed(victims):
            removed.append(run.run_id)
            if not dry_run:
                shutil.rmtree(run.path, ignore_errors=True)
        return removed

    @staticmethod
    def _status(run: RunDirectory) -> str:
        try:
            return str(run.manifest().get("status", "unknown"))
        except RunSchemaError:
            return "unknown"


def format_runs_table(manifests: List[Dict[str, object]]) -> str:
    """Render ``repro runs list`` output (one line per run)."""
    if not manifests:
        return "no runs recorded"
    headers = ["run-id", "status", "command", "target", "engine", "created"]
    rows = []
    for manifest in manifests:
        rows.append([
            str(manifest.get("run_id", "?")),
            str(manifest.get("status", "?")),
            str(manifest.get("command", "") or "-"),
            str(manifest.get("target", "") or "-"),
            str(manifest.get("engine", "") or "-"),
            str(manifest.get("created_at", "?")),
        ])
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)
