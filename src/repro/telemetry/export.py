"""Live metrics export: Prometheus text format + stdlib HTTP endpoints.

Two consumption modes share one renderer:

* **In-process** — ``Pipeline.telemetry(serve=...)`` or ``repro campaign
  --serve`` start a :class:`MetricsExporter` over the live
  :class:`~repro.telemetry.Telemetry`; the ``/metrics`` totals include
  the unconsumed worker-spool tail, so counters increase *mid-round*.
* **Cross-process** — ``repro monitor --run <id>`` exports a
  :class:`~repro.telemetry.runs.RunDirectory` written by a campaign in
  another process: latest metrics snapshot plus spool lines past the
  offset that snapshot covers.

The renderer emits Prometheus text exposition format 0.0.4: ``# TYPE``
per family, ``_total``-suffixed counters, cumulative histogram buckets
ending in ``+Inf``, and label extraction for the per-variant/per-model
metric families (``campaign.sites.<variant>`` becomes
``repro_campaign_sites{variant="..."}``).  The server is a stdlib
``ThreadingHTTPServer`` on a daemon thread — no dependencies, safe to
leave running for the life of a campaign.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro._version import __version__

#: Content type of the ``/metrics`` endpoint (exposition format 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: metric-name prefixes whose trailing component becomes a label.
_LABEL_RULES: Tuple[Tuple[str, str], ...] = (
    ("campaign.sites.", "variant"),
    ("fuzz.sites.", "variant"),
    ("engine.entered.", "model"),
    ("service.worker.utilization.", "worker"),
)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

Number = Union[int, float]


def _prom_name(dotted: str) -> str:
    """``fuzz.executions`` → ``repro_fuzz_executions``."""
    return "repro_" + _NAME_OK.sub("_", dotted)


def _split_labels(dotted: str) -> Tuple[str, Optional[Tuple[str, str]]]:
    """Family name plus an optional (label, value) extracted by rule."""
    for prefix, label in _LABEL_RULES:
        if dotted.startswith(prefix) and len(dotted) > len(prefix):
            return dotted[:len(prefix) - 1], (label, dotted[len(prefix):])
    return dotted, None


def _format_number(value: Number) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


class MetricsView:
    """A uniform, render-ready view of one run's metrics.

    ``counters``/``gauges`` map dotted names to numbers; ``histograms``
    maps names to :meth:`repro.telemetry.metrics.Histogram.snapshot`-style
    records (``count``/``sum``/``buckets`` with ``le_<bound>``/``inf``
    keys).  Both the live-telemetry and the run-directory sources reduce
    to this before rendering.
    """

    def __init__(
        self,
        counters: Optional[Mapping[str, Number]] = None,
        gauges: Optional[Mapping[str, Number]] = None,
        histograms: Optional[Mapping[str, Mapping[str, object]]] = None,
    ) -> None:
        self.counters: Dict[str, Number] = dict(counters or {})
        self.gauges: Dict[str, Number] = dict(gauges or {})
        self.histograms: Dict[str, Mapping[str, object]] = dict(
            histograms or {})

    def merged_counts(self) -> Dict[str, Number]:
        """Counters and gauges in one sorted mapping (``/status``)."""
        merged: Dict[str, Number] = dict(self.counters)
        merged.update(self.gauges)
        return dict(sorted(merged.items()))

    @classmethod
    def from_telemetry(cls, telemetry) -> "MetricsView":
        """Live view: registry values plus the unconsumed spool tail."""
        counters: Dict[str, Number] = {
            name: counter.value
            for name, counter in telemetry.registry.counters().items()
        }
        spool = getattr(telemetry, "spool", None)
        if spool is not None:
            for name, value in spool.unconsumed().items():
                counters[name] = counters.get(name, 0) + value
        gauges = {name: gauge.value
                  for name, gauge in telemetry.registry.gauges().items()}
        histograms = {name: histogram.snapshot()
                      for name, histogram
                      in telemetry.registry.histograms().items()}
        return cls(counters, gauges, histograms)

    @classmethod
    def from_run_dir(cls, run_dir) -> "MetricsView":
        """Cross-process view: latest snapshot + spool tail past it."""
        from repro.telemetry import spool as telemetry_spool

        snapshot = run_dir.latest_metrics() or {}
        metrics = dict(snapshot.get("metrics", {}))
        types = dict(snapshot.get("types", {}))
        view = cls()
        for name, value in metrics.items():
            kind = types.get(name)
            if isinstance(value, dict) or kind == "histogram":
                if isinstance(value, dict):
                    view.histograms[name] = value
            elif kind == "counter":
                view.counters[name] = value
            else:
                view.gauges[name] = value
        offset = int(snapshot.get("spool_offset", 0))
        records, _ = telemetry_spool.read_records(run_dir.spool_path, offset)
        for name, value in telemetry_spool.sum_counts(records).items():
            # Spool records carry counter deltas only, so an unseen name
            # is a counter by construction.
            if name in view.gauges:
                view.gauges[name] += value
            else:
                view.counters[name] = view.counters.get(name, 0) + value
        return view


def _histogram_lines(family: str, record: Mapping[str, object]) -> List[str]:
    """Cumulative ``_bucket``/``_sum``/``_count`` samples of one family."""
    name = _prom_name(family)
    buckets = dict(record.get("buckets", {}))
    bounds: List[Tuple[float, int]] = []
    for key, count in buckets.items():
        if key == "inf":
            continue
        try:
            bounds.append((float(str(key)[len("le_"):]), int(count)))
        except ValueError:
            continue
    bounds.sort()
    total = int(record.get("count", 0))
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    for bound, count in bounds:
        cumulative += count
        lines.append(
            f'{name}_bucket{{le="{_format_number(bound)}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {total}')
    lines.append(f"{name}_sum {_format_number(record.get('sum', 0))}")
    lines.append(f"{name}_count {total}")
    return lines


def render_prometheus(source) -> str:
    """Render a telemetry bundle or :class:`MetricsView` as exposition text.

    ``source`` is a :class:`repro.telemetry.Telemetry`, a
    :class:`~repro.telemetry.runs.RunDirectory` or a prepared
    :class:`MetricsView`.
    """
    if isinstance(source, MetricsView):
        view = source
    elif hasattr(source, "registry"):
        view = MetricsView.from_telemetry(source)
    else:
        view = MetricsView.from_run_dir(source)

    # family → (prom type, [(labels, value)]) — one # TYPE line each.
    families: Dict[str, Tuple[str, List[Tuple[Optional[Tuple[str, str]],
                                              Number]]]] = {}
    for pool, prom_type in ((view.counters, "counter"),
                            (view.gauges, "gauge")):
        for dotted, value in sorted(pool.items()):
            family, label = _split_labels(dotted)
            entry = families.setdefault(family, (prom_type, []))
            if entry[0] == prom_type:
                entry[1].append((label, value))
    lines: List[str] = []
    for family in sorted(families):
        prom_type, samples = families[family]
        name = _prom_name(family)
        if prom_type == "counter":
            name += "_total"
        lines.append(f"# TYPE {name} {prom_type}")
        for label, value in samples:
            if label is None:
                lines.append(f"{name} {_format_number(value)}")
            else:
                key, val = label
                lines.append(
                    f'{name}{{{key}="{val}"}} {_format_number(value)}')
    for family in sorted(view.histograms):
        lines.extend(_histogram_lines(family, view.histograms[family]))
    return "\n".join(lines) + "\n"


def status_snapshot(source, run_dir=None) -> Dict[str, object]:
    """The ``/status`` JSON body: merged counts + progress digest."""
    if isinstance(source, MetricsView):
        view = source
    elif hasattr(source, "registry"):
        view = MetricsView.from_telemetry(source)
        if run_dir is None:
            run_dir = getattr(source, "run_dir", None)
    else:
        view = MetricsView.from_run_dir(source)
        if run_dir is None:
            run_dir = source
    counts = view.merged_counts()

    def _count(name: str) -> Number:
        value = counts.get(name, 0)
        return value if isinstance(value, (int, float)) else 0

    sites: Dict[str, Number] = {}
    for dotted, value in counts.items():
        family, label = _split_labels(dotted)
        if label is not None and family in ("campaign.sites", "fuzz.sites"):
            variant = label[1]
            sites[variant] = max(sites.get(variant, 0), value)
    record: Dict[str, object] = {
        "kind": "repro.telemetry/status",
        "schema_version": 1,
        "version": __version__,
        "counts": counts,
        "progress": {
            "executions": max(_count("campaign.executions"),
                              _count("fuzz.executions")),
            "rounds_completed": _count("campaign.rounds_completed"),
            "jobs_running": _count("campaign.jobs_running"),
            "jobs_done": _count("campaign.jobs_done"),
            "unique_sites": max(_count("campaign.reports_unique"),
                                _count("fuzz.reports_unique")),
            "sites": dict(sorted(sites.items())),
        },
    }
    if run_dir is not None:
        try:
            record["run"] = run_dir.manifest()
        except Exception:
            record["run"] = {"run_id": getattr(run_dir, "run_id", None)}
    return record


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/metrics``, ``/status`` and ``/runs``; silent logging."""

    server_version = "repro-exporter/" + __version__

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        exporter: "MetricsExporter" = self.server.exporter  # type: ignore
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                body = render_prometheus(exporter.source).encode("utf-8")
                self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == "/status":
                record = status_snapshot(exporter.source)
                self._reply(200, "application/json",
                            json.dumps(record, indent=1,
                                       sort_keys=True).encode("utf-8"))
            elif path == "/runs":
                manifests = (exporter.registry.list_manifests()
                             if exporter.registry is not None else [])
                self._reply(200, "application/json",
                            json.dumps(manifests, indent=1,
                                       sort_keys=True).encode("utf-8"))
            elif path == "/":
                self._reply(200, "text/plain; charset=utf-8",
                            b"repro campaign observatory\n"
                            b"endpoints: /metrics /status /runs\n")
            else:
                self._reply(404, "text/plain; charset=utf-8",
                            b"unknown endpoint\n")
        except Exception as error:  # never kill the serving thread
            try:
                self._reply(500, "text/plain; charset=utf-8",
                            f"exporter error: {error}\n".encode("utf-8"))
            except OSError:
                pass

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass


class MetricsExporter:
    """One HTTP exporter over a telemetry bundle or run directory.

    ``source`` is a live :class:`~repro.telemetry.Telemetry` or a
    :class:`~repro.telemetry.runs.RunDirectory`; ``registry`` (a
    :class:`~repro.telemetry.runs.RunRegistry`) backs ``/runs``.  Binding
    ``port=0`` picks a free port — read it back from :attr:`port`.
    """

    def __init__(self, source, registry=None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.source = source
        self.registry = registry
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.exporter = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsExporter":
        """Serve on a daemon thread (returns immediately)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-exporter", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Serve on *this* thread until interrupted (``repro monitor``)."""
        try:
            self._server.serve_forever(poll_interval=poll_interval)
        except KeyboardInterrupt:
            pass
        finally:
            self._server.server_close()


def serve_metrics(source, registry=None, host: str = "127.0.0.1",
                  port: int = 0) -> MetricsExporter:
    """Start (and return) a background exporter for ``source``.

    The public-API convenience: ``exporter = serve_metrics(telemetry)``;
    scrape ``exporter.url + "/metrics"``; ``exporter.stop()`` when done.
    """
    return MetricsExporter(source, registry=registry, host=host,
                           port=port).start()


def parse_address(text: str, default_port: int = 9753,
                  ) -> Tuple[str, int]:
    """``"9090"`` / ``":9090"`` / ``"0.0.0.0:9090"`` → (host, port)."""
    text = (text or "").strip()
    if not text:
        return ("127.0.0.1", default_port)
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        return (host or "127.0.0.1",
                int(port_text) if port_text else default_port)
    if text.isdigit():
        return ("127.0.0.1", int(text))
    return (text, default_port)


def wait_until(predicate, timeout: float = 5.0,
               interval: float = 0.05) -> bool:
    """Poll ``predicate`` until true or timeout (test/CI helper)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())
