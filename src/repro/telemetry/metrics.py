"""The metrics registry: counters, gauges and histograms.

Metrics are *observations only*: nothing in the runtime ever reads a
metric back to make a decision, so enabling or disabling telemetry can
never change execution results (the differential and golden-table suites
pin this).  The hot layers pay for telemetry with exactly one
``is not None`` check per *execution* (never per instruction): when no
:class:`~repro.telemetry.Telemetry` is installed,
:func:`repro.telemetry.context.active` returns ``None`` and the
instrumented code paths skip everything else.

The module also hosts :func:`merge_counts`, the one shared
merge-by-summing rule for ``spec_stats``-style counter dictionaries
(previously duplicated across the fuzzer and the campaign aggregation
paths).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

#: default histogram bucket upper bounds (powers of two); one overflow
#: bucket is always appended.
DEFAULT_BUCKETS: Tuple[int, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
)

#: bucket bounds for latency histograms measured in (fractional)
#: seconds — the integer DEFAULT_BUCKETS would collapse sub-second
#: waits into the first bucket.  Used by the ``service.job.*`` queue
#: and job-latency families.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 300.0,
)


def merge_counts(into: Dict[str, int],
                 other: Mapping[str, int]) -> Dict[str, int]:
    """Sum one counter dictionary into another and return the target.

    This is the single merge rule for ``spec_stats`` (and any other
    name → count mapping): every key of ``other`` is added to ``into``,
    missing keys start at zero.  :meth:`repro.fuzzing.fuzzer.
    CampaignResult.merge`, the fuzzer's per-execution accumulation and
    :meth:`repro.campaign.scheduler.CampaignScheduler._merge_round` all
    route through here, so the three aggregation paths cannot drift.
    """
    for key, value in other.items():
        into[key] = into.get(key, 0) + value
    return into


class Counter:
    """A monotonically increasing metric (events, executions, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time metric (corpus size, unique sites, depth peaks)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def max(self, value: Union[int, float]) -> None:
        """Raise the gauge to ``value`` if it is a new peak."""
        if value > self.value:
            self.value = value


class Histogram:
    """A bucketed distribution (instructions per execution, job latency)."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, name: str,
                 buckets: Sequence[Union[int, float]] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds: Tuple[Union[int, float], ...] = tuple(buckets)
        #: one count per bound, plus the trailing overflow bucket.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready form: total count/sum plus non-empty buckets."""
        buckets: Dict[str, int] = {}
        for index, bound in enumerate(self.bounds):
            if self.bucket_counts[index]:
                buckets[f"le_{bound}"] = self.bucket_counts[index]
        if self.bucket_counts[-1]:
            buckets["inf"] = self.bucket_counts[-1]
        return {"count": self.count, "sum": self.sum, "buckets": buckets}


class MetricsRegistry:
    """Create-on-first-use registry of named counters, gauges, histograms.

    Metric names are dotted paths (``fuzz.executions``,
    ``campaign.sites.btb``); the catalog lives in
    ``docs/observability.md``.  Accessors return the live metric object,
    so hot loops fetch it once outside the loop and update the plain
    attribute inside.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  buckets: Sequence[Union[int, float]] = DEFAULT_BUCKETS,
                  ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, buckets)
        return metric

    def counters(self) -> Dict[str, Counter]:
        """The live counter objects by name (typed view for exporters)."""
        return dict(self._counters)

    def gauges(self) -> Dict[str, Gauge]:
        """The live gauge objects by name (typed view for exporters)."""
        return dict(self._gauges)

    def histograms(self) -> Dict[str, Histogram]:
        """The live histogram objects by name (typed view for exporters)."""
        return dict(self._histograms)

    def value(self, name: str, default: Union[int, float] = 0):
        """The current value of a counter or gauge (0 when unknown)."""
        metric = self._counters.get(name) or self._gauges.get(name)
        return metric.value if metric is not None else default

    def values_with_prefix(self, prefix: str) -> Dict[str, Union[int, float]]:
        """Counter/gauge values whose name starts with ``prefix`` (the
        prefix itself is stripped from the returned keys)."""
        found: Dict[str, Union[int, float]] = {}
        for pool in (self._counters, self._gauges):
            for name, metric in pool.items():
                if name.startswith(prefix):
                    found[name[len(prefix):]] = metric.value
        return found

    def snapshot(self) -> Dict[str, object]:
        """Every metric's current value, sorted by name (JSON-ready).

        Counters and gauges map name → number; histograms map name → the
        :meth:`Histogram.snapshot` record.
        """
        record: Dict[str, object] = {}
        for name, counter in self._counters.items():
            record[name] = counter.value
        for name, gauge in self._gauges.items():
            record[name] = gauge.value
        for name, histogram in self._histograms.items():
            record[name] = histogram.snapshot()
        return dict(sorted(record.items()))
