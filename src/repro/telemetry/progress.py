"""Live campaign progress: the periodic heartbeat reporter.

The fuzzer ticks the heartbeat once per execution and the campaign
scheduler forces a beat after every round; the reporter rate-limits
itself to one line per ``interval`` seconds and renders the interesting
registry values — executions/second, corpus size and per-speculation-
variant unique gadget sites::

    [progress] 1,234 execs (410/s), corpus 57, sites: btb=1 pht=3

Ticks are cheap even at fuzzing rates: the reporter adapts its stride —
only every Nth tick reads the clock — growing N while ticks arrive much
faster than the interval and collapsing it back to 1 the moment they
slow down, so a long-running single-execution job still beats at least
once per interval instead of stalling behind a fixed 16-tick mask.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional

from repro.telemetry.metrics import MetricsRegistry


class HeartbeatReporter:
    """Interval-throttled progress lines rendered from a metrics registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float = 5.0,
        sink: Optional[Callable[[str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry
        self.interval = max(0.05, float(interval))
        self._sink = sink or (
            lambda line: print(line, file=sys.stderr, flush=True))
        self._clock = clock
        self._ticks = 0
        #: ticks between clock reads; adapts to the observed tick rate.
        self._stride = 1
        self._pending = 0
        self._last_check: Optional[float] = None
        self._last_time: Optional[float] = None
        self._last_execs = 0
        #: heartbeat lines emitted so far (tests and the final summary).
        self.beats = 0

    #: never amortise more than this many ticks into one clock read.
    MAX_STRIDE = 4096

    # -- hot path ------------------------------------------------------------
    def tick(self) -> None:
        """Account one execution; maybe emit a line (cheap to call often).

        The stride starts at 1 (every tick reads the clock) and doubles
        while ticks arrive much faster than the reporting interval, so
        hot fuzzing loops pay one increment-and-compare per execution.
        The moment a clock read shows a full interval between checks —
        a long single execution — the stride collapses back to 1, which
        guarantees a beat at least once per interval even at one tick
        per interval.
        """
        self._ticks += 1
        self._pending += 1
        if self._pending < self._stride:
            return
        self._pending = 0
        now = self._clock()
        if self._last_check is not None:
            gap = now - self._last_check
            if gap >= self.interval:
                self._stride = 1
            elif gap * 4 < self.interval and self._stride < self.MAX_STRIDE:
                self._stride <<= 1
        self._last_check = now
        self.maybe_beat(now=now)

    # -- emission ------------------------------------------------------------
    def maybe_beat(self, force: bool = False,
                   now: Optional[float] = None) -> bool:
        """Emit a progress line if ``interval`` elapsed (or ``force``)."""
        if now is None:
            now = self._clock()
        if self._last_time is None:
            # First observation anchors the rate window; emit only if forced.
            self._last_time = now
            self._last_execs = self._executions()
            if not force:
                return False
        elapsed = now - self._last_time
        if not force and elapsed < self.interval:
            return False
        execs = self._executions()
        rate = (execs - self._last_execs) / elapsed if elapsed > 0 else 0.0
        self._sink(self._render(execs, rate))
        self._last_time = now
        self._last_execs = execs
        self.beats += 1
        return True

    # -- rendering -----------------------------------------------------------
    def _executions(self) -> int:
        # The scheduler-side counter covers pool campaigns; the fuzzer-side
        # one updates per execution in serial runs.  Their max is the best
        # live estimate either way.
        return int(max(self.registry.value("campaign.executions"),
                       self.registry.value("fuzz.executions")))

    def _render(self, execs: int, rate: float) -> str:
        parts = [f"[progress] {execs:,} execs ({rate:,.0f}/s)"]
        corpus = self.registry.value("fuzz.corpus_size")
        if corpus:
            parts.append(f"corpus {int(corpus)}")
        # Unique sites per speculation variant; campaign-wide (deduplicated
        # by the scheduler) trumps the per-fuzzer view when both exist.
        sites = (self.registry.values_with_prefix("campaign.sites.")
                 or self.registry.values_with_prefix("fuzz.sites."))
        if sites:
            rendered = " ".join(f"{variant}={int(count)}"
                                for variant, count in sorted(sites.items()))
            parts.append(f"sites: {rendered}")
        failed = self.registry.value("campaign.jobs_failed")
        if failed:
            parts.append(f"failed jobs {int(failed)}")
        return ", ".join(parts)
