"""Live campaign progress: the periodic heartbeat reporter.

The fuzzer ticks the heartbeat once per execution and the campaign
scheduler forces a beat after every round; the reporter rate-limits
itself to one line per ``interval`` seconds and renders the interesting
registry values — executions/second, corpus size and per-speculation-
variant unique gadget sites::

    [progress] 1,234 execs (410/s), corpus 57, sites: btb=1 pht=3

Ticks are cheap even at fuzzing rates: only every 16th tick reads the
clock, everything else is one increment-and-mask.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional

from repro.telemetry.metrics import MetricsRegistry


class HeartbeatReporter:
    """Interval-throttled progress lines rendered from a metrics registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float = 5.0,
        sink: Optional[Callable[[str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry
        self.interval = max(0.05, float(interval))
        self._sink = sink or (
            lambda line: print(line, file=sys.stderr, flush=True))
        self._clock = clock
        self._ticks = 0
        self._last_time: Optional[float] = None
        self._last_execs = 0
        #: heartbeat lines emitted so far (tests and the final summary).
        self.beats = 0

    # -- hot path ------------------------------------------------------------
    def tick(self) -> None:
        """Account one execution; maybe emit a line (cheap to call often)."""
        self._ticks += 1
        if self._ticks & 0xF:
            return
        self.maybe_beat()

    # -- emission ------------------------------------------------------------
    def maybe_beat(self, force: bool = False) -> bool:
        """Emit a progress line if ``interval`` elapsed (or ``force``)."""
        now = self._clock()
        if self._last_time is None:
            # First observation anchors the rate window; emit only if forced.
            self._last_time = now
            self._last_execs = self._executions()
            if not force:
                return False
        elapsed = now - self._last_time
        if not force and elapsed < self.interval:
            return False
        execs = self._executions()
        rate = (execs - self._last_execs) / elapsed if elapsed > 0 else 0.0
        self._sink(self._render(execs, rate))
        self._last_time = now
        self._last_execs = execs
        self.beats += 1
        return True

    # -- rendering -----------------------------------------------------------
    def _executions(self) -> int:
        # The scheduler-side counter covers pool campaigns; the fuzzer-side
        # one updates per execution in serial runs.  Their max is the best
        # live estimate either way.
        return int(max(self.registry.value("campaign.executions"),
                       self.registry.value("fuzz.executions")))

    def _render(self, execs: int, rate: float) -> str:
        parts = [f"[progress] {execs:,} execs ({rate:,.0f}/s)"]
        corpus = self.registry.value("fuzz.corpus_size")
        if corpus:
            parts.append(f"corpus {int(corpus)}")
        # Unique sites per speculation variant; campaign-wide (deduplicated
        # by the scheduler) trumps the per-fuzzer view when both exist.
        sites = (self.registry.values_with_prefix("campaign.sites.")
                 or self.registry.values_with_prefix("fuzz.sites."))
        if sites:
            rendered = " ".join(f"{variant}={int(count)}"
                                for variant, count in sorted(sites.items()))
            parts.append(f"sites: {rendered}")
        failed = self.registry.value("campaign.jobs_failed")
        if failed:
            parts.append(f"failed jobs {int(failed)}")
        return ", ".join(parts)
