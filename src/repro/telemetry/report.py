"""Trace reports: self-contained HTML and collapsed-stack flamegraphs.

``repro stats --html out.html trace.jsonl`` renders one dependency-free
HTML page from an :func:`~repro.telemetry.tracing.aggregate_trace`
summary: the span tree with elapsed bars, the critical path (the
heaviest parent→child chain), per-span-path timing percentiles, the
final counters, and — when a ``RunResult`` with an engine profile is
supplied — the per-opcode histogram and hot-spot table of
:class:`~repro.telemetry.profiler.EngineProfiler`.

``repro stats --flamegraph out.txt trace.jsonl`` emits the *collapsed
stack* format consumed by the standard ``flamegraph.pl``/speedscope
tooling: one ``parent;child;grandchild <value>`` line per span path,
where the value is the span's **self time** in microseconds (elapsed
minus direct children), so stacking the frames reconstructs inclusive
time exactly.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple

from repro._version import __version__


# -- span-tree helpers -------------------------------------------------------
def _span_children(spans: Sequence[Dict[str, object]],
                   ) -> Dict[str, List[Dict[str, object]]]:
    """Direct children per span path ('' keys the roots)."""
    children: Dict[str, List[Dict[str, object]]] = {}
    for span in spans:
        path = str(span.get("path") or "")
        parent = path.rsplit("/", 1)[0] if "/" in path else ""
        children.setdefault(parent, []).append(span)
    return children


def _elapsed(span: Dict[str, object]) -> float:
    return float(span.get("elapsed_s") or 0.0)


def critical_path(spans: Sequence[Dict[str, object]],
                  ) -> List[Dict[str, object]]:
    """The heaviest root→leaf chain: at each level, the slowest child.

    With repeated sibling paths (per-round spans) every *instance* is a
    candidate — the chain follows concrete spans, not aggregated paths.
    """
    children = _span_children(spans)
    chain: List[Dict[str, object]] = []
    level = children.get("", [])
    while level:
        heaviest = max(level, key=_elapsed)
        chain.append(heaviest)
        level = children.get(str(heaviest.get("path") or ""), [])
    return chain


def self_times(spans: Sequence[Dict[str, object]],
               ) -> Dict[str, float]:
    """Summed self time (elapsed minus direct children) per span path."""
    children = _span_children(spans)
    totals: Dict[str, float] = {}
    for span in spans:
        path = str(span.get("path") or "")
        child_sum = 0.0
        # Only children started inside this instance belong to it; with
        # repeated paths we conservatively split the children's total
        # across the instances evenly.
        instances = [s for s in spans if str(s.get("path") or "") == path]
        for child in children.get(path, []):
            child_sum += _elapsed(child)
        share = child_sum / len(instances) if instances else child_sum
        totals[path] = totals.get(path, 0.0) + max(
            0.0, _elapsed(span) - share)
    return totals


def render_flamegraph(aggregate: Dict[str, object]) -> str:
    """Collapsed-stack output: ``a;b;c <self-time-µs>`` per span path."""
    spans = list(aggregate.get("spans") or [])
    lines: List[str] = []
    for path, self_s in sorted(self_times(spans).items()):
        micros = int(round(self_s * 1_000_000))
        if micros <= 0:
            continue
        frames = ";".join(part for part in path.split("/") if part)
        if frames:
            lines.append(f"{frames} {micros}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- HTML rendering ----------------------------------------------------------
_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #1a1a2e; max-width: 70em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #ccd; padding: 0.25em 0.7em; text-align: left;
         font-size: 0.92em; }
th { background: #eef; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { display: inline-block; height: 0.8em; background: #4a7ebb;
       vertical-align: middle; margin-right: 0.4em; }
.crit { color: #b03030; font-weight: 600; }
.muted { color: #667; font-size: 0.85em; }
code { background: #f2f2f8; padding: 0.1em 0.3em; border-radius: 3px; }
"""


def _bar(fraction: float) -> str:
    width = max(1, int(round(200 * max(0.0, min(1.0, fraction)))))
    return f'<span class="bar" style="width:{width}px"></span>'


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]],
           numeric: Sequence[int] = ()) -> str:
    num_attr = ' class="num"'
    head = "".join(
        f"<th{num_attr if i in numeric else ''}>{html.escape(h)}</th>"
        for i, h in enumerate(headers))
    body = []
    for row in rows:
        cells = "".join(
            f"<td{num_attr if i in numeric else ''}>{cell}</td>"
            for i, cell in enumerate(row))
        body.append(f"<tr>{cells}</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>")


def render_html_report(
    aggregate: Dict[str, object],
    profile: Optional[Dict[str, object]] = None,
    title: str = "repro trace report",
) -> str:
    """One self-contained HTML page from a trace aggregate.

    ``profile`` is the optional ``telemetry.profile`` section of a
    :class:`repro.api.RunResult` (an
    :meth:`~repro.telemetry.profiler.EngineProfiler.snapshot` record);
    when given, the hot-spot and per-opcode tables are included.
    """
    spans = list(aggregate.get("spans") or [])
    crit = critical_path(spans)
    crit_paths = {id(span) for span in crit}
    max_elapsed = max((_elapsed(span) for span in spans), default=0.0)

    parts: List[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p class='muted'>repro {html.escape(str(aggregate.get('version')))}"
        f" · trace schema v{aggregate.get('schema_version')}"
        f" · {aggregate.get('records')} records"
        f" · report generator {html.escape(__version__)}</p>",
    ]
    context = aggregate.get("context") or {}
    if context:
        parts.append("<p>" + " · ".join(
            f"<code>{html.escape(str(k))}={html.escape(str(v))}</code>"
            for k, v in sorted(context.items()) if v is not None) + "</p>")

    # -- span tree with bars + critical-path highlight ----------------------
    parts.append("<h2>Span tree</h2>")
    rows = []
    for span in spans:
        path = str(span.get("path") or "")
        depth = path.count("/")
        elapsed = _elapsed(span)
        marker = " class='crit'" if id(span) in crit_paths else ""
        name = ("&nbsp;" * 4 * depth
                + f"<span{marker}>{html.escape(str(span.get('name')))}</span>")
        status = str(span.get("status") or "?")
        if span.get("error"):
            status += f" — {html.escape(str(span.get('error')))}"
        bar = _bar(elapsed / max_elapsed if max_elapsed else 0.0)
        rows.append([name, f"{bar}{elapsed:.3f}s", html.escape(status)])
    parts.append(_table(["span", "elapsed", "status"], rows)
                 if rows else "<p class='muted'>no spans recorded</p>")
    if crit:
        total = sum(_elapsed(span) for span in crit)
        chain = " → ".join(html.escape(str(span.get("name"))) for span in crit)
        parts.append(f"<p>critical path: <span class='crit'>{chain}</span> "
                     f"<span class='muted'>({total:.3f}s inclusive)</span></p>")

    # -- per-span-path percentiles ------------------------------------------
    span_paths = aggregate.get("span_paths") or {}
    if span_paths:
        parts.append("<h2>Per-path timings</h2>")
        rows = []
        for path in sorted(span_paths):
            stats = span_paths[path]
            rows.append([
                f"<code>{html.escape(path)}</code>",
                str(stats.get("count", 0)),
                f"{float(stats.get('total_s') or 0):.3f}",
                f"{float(stats.get('p50_s') or 0):.3f}",
                f"{float(stats.get('p90_s') or 0):.3f}",
                f"{float(stats.get('max_s') or 0):.3f}",
            ])
        parts.append(_table(
            ["path", "count", "total s", "p50 s", "p90 s", "max s"],
            rows, numeric=(1, 2, 3, 4, 5)))

    # -- jobs ----------------------------------------------------------------
    jobs = aggregate.get("jobs") or {}
    if jobs.get("done") or jobs.get("failed"):
        parts.append(
            f"<h2>Jobs</h2><p>{jobs.get('done', 0)} completed, "
            f"{jobs.get('failed', 0)} failed, "
            f"{jobs.get('executions', 0)} executions, "
            f"{float(jobs.get('elapsed_s') or 0):.3f}s in workers</p>")
        failures = aggregate.get("failures") or []
        if failures:
            parts.append(_table(
                ["failed job", "error"],
                [[html.escape(str(f.get('job_id'))),
                  html.escape(str(f.get('error')))] for f in failures]))

    # -- counters ------------------------------------------------------------
    counters = aggregate.get("counters") or {}
    numeric_counters = {name: value for name, value in counters.items()
                        if isinstance(value, (int, float))}
    if numeric_counters:
        parts.append("<h2>Final counters</h2>")
        parts.append(_table(
            ["metric", "value"],
            [[f"<code>{html.escape(name)}</code>", str(value)]
             for name, value in sorted(numeric_counters.items())],
            numeric=(1,)))

    # -- engine profile (hot spots) -----------------------------------------
    if profile:
        hot = list(profile.get("hot_spots") or [])
        if hot:
            parts.append(
                f"<h2>Engine hot spots</h2><p class='muted'>"
                f"{profile.get('addresses_seen', 0)} distinct addresses "
                f"executed; top {len(hot)} shown</p>")
            top = max((int(entry.get("count", 0)) for entry in hot),
                      default=0)
            rows = []
            for entry in hot:
                count = int(entry.get("count", 0))
                rows.append([
                    f"<code>{html.escape(str(entry.get('address')))}</code>",
                    html.escape(str(entry.get("function", "?"))),
                    f"{_bar(count / top if top else 0)}{count}",
                ])
            parts.append(_table(["address", "function", "executions"], rows))
        per_opcode = dict(profile.get("per_opcode") or {})
        if per_opcode:
            parts.append("<h2>Per-opcode executions</h2>")
            top = max(per_opcode.values())
            rows = [
                [f"<code>{html.escape(name)}</code>",
                 f"{_bar(count / top if top else 0)}{count}"]
                for name, count in sorted(per_opcode.items(),
                                          key=lambda kv: (-kv[1], kv[0]))
            ]
            parts.append(_table(["opcode", "executions"], rows))

    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
