"""Structured JSONL logging with trace correlation.

One log record is one JSON object per line::

    {"ts": 1754500000.123456, "level": "info", "event": "job_completed",
     "logger": "service.worker", "trace_id": "...", "campaign_id": "...",
     "fingerprint": "...", "worker": "w0", "elapsed_s": 0.42}

Fixed fields are ``ts`` (epoch seconds), ``level`` (``debug`` / ``info``
/ ``warning`` / ``error``), ``event`` (a stable snake_case name — the
thing grep and log pipelines key on) and ``logger`` (the emitting
component).  Everything else is free-form context; the service stamps
trace-correlation fields (``trace_id``, ``span_id``, ``campaign_id``,
job ``fingerprint``) wherever it has them, so one ``grep trace_id``
follows a job across the submit/claim/execute/complete/ingest hops that
the distributed trace records as spans.

:class:`StructuredLogger` is deliberately tiny: a sink (path or stream),
a level threshold, and bound context inherited by :meth:`bind` children.
A logger built with ``sink=None`` is disabled and every call is a cheap
no-op, so components can hold a logger unconditionally instead of
guarding each call site — the same "observation only, one cheap check"
contract the metrics layer follows.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Optional

#: Level names in severity order; the threshold comparison is numeric.
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30,
                          "error": 40}


def parse_level(name: str) -> int:
    """A level name → its numeric severity (raises on unknown names)."""
    try:
        return LEVELS[str(name).strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {name!r}; expected one of "
            f"{', '.join(sorted(LEVELS, key=LEVELS.get))}")


class StructuredLogger:
    """A JSONL logger: one sorted-key JSON object per line, flushed.

    ``sink`` is a path (opened append-mode and owned), an open text
    stream (borrowed), or ``None`` (disabled — every call no-ops).
    ``context`` fields are stamped into every record; :meth:`bind`
    returns a child sharing the sink, lock and threshold with extra
    bound context, so per-component loggers are free.
    """

    def __init__(self, sink=None, level: str = "info",
                 context: Optional[Dict[str, object]] = None,
                 clock=time.time) -> None:
        if sink is None:
            self._file = None
            self._owns_file = False
        elif hasattr(sink, "write"):
            self._file = sink
            self._owns_file = False
        else:
            self._file = open(sink, "a", encoding="utf-8")
            self._owns_file = True
        self.threshold = parse_level(level)
        self.context: Dict[str, object] = dict(context or {})
        self._clock = clock
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._file is not None

    def bind(self, **context: object) -> "StructuredLogger":
        """A child logger with extra context (shares sink/lock/level)."""
        child = StructuredLogger.__new__(StructuredLogger)
        child._file = self._file
        child._owns_file = False
        child.threshold = self.threshold
        child.context = {**self.context, **context}
        child._clock = self._clock
        child._lock = self._lock
        return child

    # -- emission ------------------------------------------------------------
    def log(self, level: str, event: str, **fields: object) -> None:
        if self._file is None or LEVELS.get(level, 0) < self.threshold:
            return
        record: Dict[str, object] = {
            "ts": round(self._clock(), 6),
            "level": level,
            "event": event,
            **self.context,
            **{key: value for key, value in fields.items()
               if value is not None},
        }
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            try:
                self._file.write(line)
                self._file.flush()
            except (OSError, ValueError):
                # A closed or full sink must never take the service down.
                pass

    def debug(self, event: str, **fields: object) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log("error", event, **fields)

    def close(self) -> None:
        """Release an owned sink (borrowed streams are left open)."""
        if self._owns_file and self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
