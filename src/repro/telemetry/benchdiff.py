"""Bench trajectory: diff and history over ``BENCH_*.json`` artifacts.

The benchmarks write one ``BENCH_<name>.json`` per run (see
``benchmarks/conftest.py``): a flat JSON object of numeric metrics plus
provenance fields (``timestamp``/``commit``/``host``/``scale``).  This
module compares such artifacts across runs:

* :func:`diff_bench` pairs the metrics of two snapshots (single files or
  directories of ``BENCH_*`` files), classifies each change with a
  direction heuristic — ``*_per_sec``-style metrics regress when they
  *drop*, ``*_cycles``-style ones when they *rise* — and flags moves
  beyond a configurable threshold.  ``repro bench diff old new`` exits
  nonzero when any regression is flagged, which is what CI gates on.
* :func:`bench_history` lines several snapshots up chronologically so a
  metric's trajectory across commits is one row.

Nested objects (embedded telemetry sections) are flattened to dotted
keys; non-numeric leaves and provenance fields are ignored as metrics
but carried as labels.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: provenance/meta keys that are never treated as metrics.
META_KEYS = frozenset({
    "bench", "scale", "version", "schema", "schema_version",
    "timestamp", "commit", "host", "platform",
})

#: substrings marking a metric where *higher* is better.
HIGHER_IS_BETTER = ("per_sec", "per_second", "throughput", "rate",
                    "speedup", "hits", "coverage", "unique")
#: substrings marking a metric where *lower* is better.
LOWER_IS_BETTER = ("cycles", "seconds", "elapsed", "time", "overhead",
                   "misses", "bytes", "latency", "_ns", "_us", "_ms")

#: default regression threshold: relative change that flags a metric.
DEFAULT_THRESHOLD = 0.05


def metric_direction(name: str) -> int:
    """+1 when higher is better, -1 when lower is better, 0 unknown."""
    lowered = name.lower()
    for marker in HIGHER_IS_BETTER:
        if marker in lowered:
            return 1
    for marker in LOWER_IS_BETTER:
        if marker in lowered:
            return -1
    return 0


def flatten_metrics(record: Mapping[str, object],
                    prefix: str = "") -> Dict[str, Number]:
    """Numeric leaves of one bench record, dotted-key flattened."""
    flat: Dict[str, Number] = {}
    for key, value in record.items():
        if not prefix and key in META_KEYS:
            continue
        path = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[path] = value
        elif isinstance(value, Mapping):
            flat.update(flatten_metrics(value, prefix=f"{path}."))
    return flat


def load_bench_snapshot(path: str) -> Dict[str, Dict[str, object]]:
    """Load one snapshot: a ``BENCH_*.json`` file or a directory of them.

    Returns bench name → raw record.  Unreadable files raise — a CI gate
    must not silently pass on a missing artifact.
    """
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
        if not files:
            raise FileNotFoundError(f"no BENCH_*.json files under {path}")
    else:
        files = [path]
    snapshot: Dict[str, Dict[str, object]] = {}
    for file_path in files:
        with open(file_path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        if not isinstance(record, dict):
            raise ValueError(f"{file_path}: not a JSON object")
        name = str(record.get("bench")
                   or os.path.basename(file_path)[len("BENCH_"):-len(".json")]
                   or os.path.basename(file_path))
        snapshot[name] = record
    return snapshot


def snapshot_label(snapshot: Mapping[str, Mapping[str, object]],
                   fallback: str = "?") -> str:
    """A short human label for one snapshot (commit or timestamp)."""
    for record in snapshot.values():
        commit = str(record.get("commit") or "")
        stamp = str(record.get("timestamp") or "")
        if commit:
            return commit
        if stamp:
            return stamp
    return fallback


def diff_bench(
    old: Mapping[str, Mapping[str, object]],
    new: Mapping[str, Mapping[str, object]],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Dict[str, object]]:
    """Compare two snapshots metric by metric.

    Each entry carries ``bench``/``metric``/``old``/``new``, the relative
    ``change`` (``new/old - 1``; ``None`` when the old value is zero),
    the ``direction`` heuristic and a ``status``:

    * ``regression`` — moved against its direction by ≥ ``threshold``;
    * ``improvement`` — moved with its direction by ≥ ``threshold``;
    * ``ok`` — within the threshold (or direction unknown);
    * ``added`` / ``removed`` — present on only one side.
    """
    entries: List[Dict[str, object]] = []
    benches = sorted(set(old) | set(new))
    for bench in benches:
        old_flat = flatten_metrics(old.get(bench, {}))
        new_flat = flatten_metrics(new.get(bench, {}))
        for metric in sorted(set(old_flat) | set(new_flat)):
            entry: Dict[str, object] = {
                "bench": bench,
                "metric": metric,
                "old": old_flat.get(metric),
                "new": new_flat.get(metric),
                "direction": metric_direction(metric),
                "change": None,
                "status": "ok",
            }
            if metric not in old_flat:
                entry["status"] = "added"
            elif metric not in new_flat:
                entry["status"] = "removed"
            else:
                before, after = old_flat[metric], new_flat[metric]
                if before:
                    change = after / before - 1.0
                    entry["change"] = round(change, 6)
                    direction = entry["direction"]
                    if direction and abs(change) >= threshold:
                        moved_with = change * direction > 0
                        entry["status"] = ("improvement" if moved_with
                                           else "regression")
            entries.append(entry)
    return entries


def regressions(entries: Sequence[Mapping[str, object]],
                ) -> List[Mapping[str, object]]:
    """The subset of :func:`diff_bench` entries flagged as regressions."""
    return [entry for entry in entries
            if entry.get("status") == "regression"]


def _format_value(value: Optional[Number]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value))


def format_diff_table(entries: Sequence[Mapping[str, object]],
                      show_ok: bool = False) -> str:
    """Render a diff for humans; regressions first, then improvements."""
    order = {"regression": 0, "improvement": 1, "added": 2, "removed": 3,
             "ok": 4}
    visible = [entry for entry in entries
               if show_ok or entry.get("status") != "ok"]
    visible.sort(key=lambda entry: (order.get(str(entry.get("status")), 9),
                                    str(entry.get("bench")),
                                    str(entry.get("metric"))))
    if not visible:
        return "no metric changes beyond threshold"
    headers = ["status", "bench", "metric", "old", "new", "change"]
    rows = []
    for entry in visible:
        change = entry.get("change")
        rows.append([
            str(entry.get("status")),
            str(entry.get("bench")),
            str(entry.get("metric")),
            _format_value(entry.get("old")),
            _format_value(entry.get("new")),
            f"{change * 100:+.1f}%" if isinstance(change, float) else "-",
        ])
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    flagged = regressions(entries)
    lines.append("")
    lines.append(f"{len(flagged)} regression(s), "
                 f"{sum(1 for e in entries if e.get('status') == 'improvement')}"
                 " improvement(s) "
                 f"across {len(entries)} compared metric(s)")
    return "\n".join(lines)


def bench_history(
    snapshots: Sequence[Mapping[str, Mapping[str, object]]],
    labels: Optional[Sequence[str]] = None,
) -> Tuple[List[str], List[List[str]]]:
    """Line several snapshots up: one row per bench.metric, one column each.

    Returns ``(headers, rows)`` ready for :func:`format_history_table`.
    """
    labels = list(labels or [])
    while len(labels) < len(snapshots):
        labels.append(snapshot_label(snapshots[len(labels)],
                                     fallback=f"#{len(labels)}"))
    flats: List[Dict[str, Dict[str, Number]]] = []
    metric_keys: List[Tuple[str, str]] = []
    seen = set()
    for snapshot in snapshots:
        flat = {bench: flatten_metrics(record)
                for bench, record in snapshot.items()}
        flats.append(flat)
        for bench in sorted(flat):
            for metric in sorted(flat[bench]):
                if (bench, metric) not in seen:
                    seen.add((bench, metric))
                    metric_keys.append((bench, metric))
    headers = ["bench", "metric"] + labels
    rows: List[List[str]] = []
    for bench, metric in metric_keys:
        row = [bench, metric]
        for flat in flats:
            row.append(_format_value(flat.get(bench, {}).get(metric)))
        rows.append(row)
    return headers, rows


def format_history_table(headers: List[str], rows: List[List[str]]) -> str:
    if not rows:
        return "no bench metrics found"
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)
