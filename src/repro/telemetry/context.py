"""The process-wide active-telemetry slot.

The hot layers (emulator ``run()``, the fuzzer's execution loop, the
campaign scheduler) do not thread a telemetry handle through every call —
they ask :func:`active` once per execution/round and skip all telemetry
work when it returns ``None``.  That single check is the entire disabled
cost, which is what keeps the default path within the ≤5 % throughput
budget.

The slot is pid-guarded: a ``multiprocessing`` fork inherits the module
state, but a trace writer or heartbeat inherited by a pool worker would
interleave output and count things the parent never sees, so
:func:`active` answers ``None`` in any process other than the installer.
Pool campaigns still get telemetry — the scheduler folds each
:class:`~repro.campaign.worker.WorkerResult` into the parent registry —
only per-execution granularity (heartbeat ticks, engine profiling) needs
a serial (``workers=1``) run.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

_ACTIVE = None
_ACTIVE_PID = 0


def install(telemetry):
    """Make ``telemetry`` the process's active instance and return it."""
    global _ACTIVE, _ACTIVE_PID
    _ACTIVE = telemetry
    _ACTIVE_PID = os.getpid()
    return telemetry


def deactivate() -> None:
    """Clear the active-telemetry slot (the disabled fast path returns)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional["object"]:
    """The installed :class:`~repro.telemetry.Telemetry`, or ``None``.

    ``None`` in forked children of the installing process (see the module
    docstring) and, of course, whenever nothing is installed.
    """
    telemetry = _ACTIVE
    if telemetry is None or os.getpid() != _ACTIVE_PID:
        return None
    return telemetry


@contextmanager
def session(telemetry):
    """Install ``telemetry`` for the duration of a ``with`` block.

    Nests: the previously active instance (if any) is restored on exit,
    so a pipeline run inside a larger traced program hands the slot back.
    """
    global _ACTIVE, _ACTIVE_PID
    previous, previous_pid = _ACTIVE, _ACTIVE_PID
    install(telemetry)
    try:
        yield telemetry
    finally:
        _ACTIVE = previous
        _ACTIVE_PID = previous_pid
