"""Structured JSONL span tracing: writer, reader and aggregator.

A trace is a newline-delimited JSON file whose first record is a
versioned header (``kind`` / ``schema_version`` / package ``version``,
like :class:`repro.api.result.RunResult`) and whose following records are
events and span brackets::

    {"type": "trace_start", "kind": "repro.telemetry/trace", ...}
    {"type": "span_start", "name": "pipeline", "path": "pipeline", ...}
    {"type": "span_start", "name": "stage:fuzz", "path": "pipeline/stage:fuzz", ...}
    {"type": "job", "job_id": "...", "executions": 200, ...}
    {"type": "span_end", "name": "stage:fuzz", "status": "ok",
     "elapsed_s": 1.23, "counters": {"campaign.executions": 200, ...}}
    ...
    {"type": "trace_end", "counters": {...}}

Every record carries a monotonically increasing ``seq`` and a wall-clock
``ts``; ``span_end`` records capture elapsed time, error details when the
span body raised, and a snapshot of the metrics registry so a trace is
self-contained.  ``repro stats <trace.jsonl>`` renders the aggregate via
:func:`aggregate_trace` / :func:`format_trace_stats`.
"""

from __future__ import annotations

import hashlib
import json
import time
import uuid
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro._version import __version__

#: Artifact type tag of the header record.
TRACE_KIND = "repro.telemetry/trace"

#: Bump on any backwards-incompatible change to the trace layout.
TRACE_SCHEMA_VERSION = 1


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (one per campaign/request)."""
    return uuid.uuid4().hex


def derive_span_id(trace_id: str, *parts: object) -> str:
    """A deterministic 16-hex-char span id from a trace id plus parts.

    Distributed lifecycle spans (submit/claim/execute/ingest of one
    queued job) derive their ids from stable coordinates — trace id, job
    fingerprint, phase, attempt — instead of random draws, so a lease
    takeover or a crash-replay of the same attempt reconstructs the
    *same* span id (idempotent merge), while a genuine retry (attempt+1)
    gets a distinct one.
    """
    canonical = "|".join((trace_id,) + tuple(str(part) for part in parts))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class TraceError(ValueError):
    """Raised when a trace file is malformed or of an unsupported version."""


class TraceWriter:
    """Appends events and spans to a JSONL sink, one record per line.

    ``sink`` is a path (opened and owned by the writer) or an open
    text-file-like object (borrowed).  Records are flushed per line so a
    live trace can be followed while the campaign runs.  ``registry``
    (usually wired by :class:`~repro.telemetry.Telemetry`) is snapshotted
    into every ``span_end`` and the final ``trace_end`` record.
    """

    def __init__(self, sink, context: Optional[Dict[str, object]] = None,
                 registry=None, clock=time.time) -> None:
        if hasattr(sink, "write"):
            self._file = sink
            self._owns_file = False
        else:
            self._file = open(sink, "w", encoding="utf-8")
            self._owns_file = True
        self.registry = registry
        self._clock = clock
        self._seq = 0
        self._stack: List[str] = []
        self._closed = False
        self._emit({
            "type": "trace_start",
            "kind": TRACE_KIND,
            "schema_version": TRACE_SCHEMA_VERSION,
            "version": __version__,
            "context": dict(context or {}),
        })

    # -- emission ------------------------------------------------------------
    def _emit(self, record: Dict[str, object]) -> None:
        if self._closed:
            return
        record["seq"] = self._seq
        self._seq += 1
        record["ts"] = round(self._clock(), 6)
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()

    def event(self, type_: str, **fields: object) -> None:
        """Emit one free-form event inside the current span (if any)."""
        record: Dict[str, object] = {"type": type_, **fields}
        if self._stack:
            record["span"] = "/".join(self._stack)
        self._emit(record)

    @contextmanager
    def span(self, name: str, **fields: object):
        """Bracket a block with ``span_start``/``span_end`` records.

        The end record carries the elapsed wall-clock seconds, the
        status (``ok`` or ``error`` — errors re-raise after being
        recorded, with type and message captured) and a counters
        snapshot of the attached registry.
        """
        self._stack.append(name)
        path = "/".join(self._stack)
        start_seq = self._seq
        self._emit({"type": "span_start", "name": name, "path": path,
                    **fields})
        started = time.perf_counter()
        try:
            yield self
        except BaseException as error:
            self._end_span(name, path, start_seq, started, status="error",
                           error=f"{type(error).__name__}: {error}")
            raise
        else:
            self._end_span(name, path, start_seq, started, status="ok")
        finally:
            self._stack.pop()

    def _end_span(self, name: str, path: str, start_seq: int,
                  started: float, status: str,
                  error: Optional[str] = None) -> None:
        record: Dict[str, object] = {
            "type": "span_end",
            "name": name,
            "path": path,
            "start_seq": start_seq,
            "status": status,
            "elapsed_s": round(time.perf_counter() - started, 6),
        }
        if error is not None:
            record["error"] = error
        if self.registry is not None:
            record["counters"] = self.registry.snapshot()
        self._emit(record)

    def merge_span(self, name: str, path: str, elapsed_s: float,
                   status: str = "ok", **fields: object) -> None:
        """Record a span that happened *elsewhere* (another thread,
        process, or machine) as a single ``span_end`` record.

        Distributed lifecycle phases — a queued job's queue wait, its
        execution on a worker, the lag until its result merged — are
        measured where they happen and merged here after the fact, so
        they aggregate into ``span_paths`` (and render in the HTML
        report/flamegraph) exactly like locally bracketed spans.  No
        ``span_start`` is written and no counters snapshot is attached:
        the span did not run on this writer's thread, so counter
        movement cannot be attributed to it.
        """
        self._emit({
            "type": "span_end",
            "name": name,
            "path": path,
            "start_seq": self._seq,
            "status": status,
            "elapsed_s": round(max(0.0, float(elapsed_s)), 6),
            **fields,
        })

    def close(self) -> None:
        """Write the ``trace_end`` record and release an owned sink."""
        if self._closed:
            return
        record: Dict[str, object] = {"type": "trace_end"}
        if self.registry is not None:
            record["counters"] = self.registry.snapshot()
        self._emit(record)
        self._closed = True
        if self._owns_file:
            self._file.close()


# -- reading ----------------------------------------------------------------
def read_trace(path: str) -> List[Dict[str, object]]:
    """Parse and validate a trace file written by :class:`TraceWriter`.

    Raises:
        TraceError: unparseable lines, a missing/foreign header, or a
            ``schema_version`` newer than this library understands.
    """
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise TraceError(
                    f"{path}:{number}: unparseable trace record: {error}")
    if not records:
        raise TraceError(f"{path}: empty trace")
    header = records[0]
    if header.get("type") != "trace_start" or header.get("kind") != TRACE_KIND:
        raise TraceError(
            f"{path}: not a {TRACE_KIND} trace "
            f"(first record: {header.get('type')!r}/{header.get('kind')!r})")
    version = int(header.get("schema_version", 0))
    if version < 1 or version > TRACE_SCHEMA_VERSION:
        raise TraceError(
            f"{path}: unsupported trace schema_version {version} "
            f"(this library understands 1..{TRACE_SCHEMA_VERSION})")
    return records


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted value list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _numeric_delta(current: Dict[str, object],
                   previous: Dict[str, object]) -> Dict[str, object]:
    """Non-zero numeric differences between two counter snapshots."""
    delta: Dict[str, object] = {}
    for name, value in current.items():
        if not isinstance(value, (int, float)):
            continue
        before = previous.get(name, 0)
        if not isinstance(before, (int, float)):
            before = 0
        if value != before:
            delta[name] = round(value - before, 6)
    return delta


def aggregate_trace(records: List[Dict[str, object]]) -> Dict[str, object]:
    """Fold a parsed trace into one JSON-ready summary record.

    The summary carries the header identity, the span tree (in start
    order, with elapsed/status/error), per-job statistics from ``job`` /
    ``job_failed`` events, and the final counters (the ``trace_end``
    snapshot, falling back to the last ``span_end`` one).  Two derived
    sections make traces comparable across runs:

    * ``span_paths`` — per span *path*, the count and p50/p90/max of
      elapsed seconds (repeated spans such as per-round or per-job ones
      aggregate into one row);
    * per-span ``counters_delta`` — the numeric counter movement since
      the previous ``span_end`` snapshot (attribution is to the span
      that *ended*, i.e. innermost-first for nested spans).
    """
    header = records[0]
    spans: List[Dict[str, object]] = []
    jobs = {"done": 0, "failed": 0, "executions": 0, "elapsed_s": 0.0}
    failures: List[Dict[str, object]] = []
    counters: Dict[str, object] = {}
    previous_counters: Dict[str, object] = {}
    events = 0
    for record in records[1:]:
        kind = record.get("type")
        if kind == "span_end":
            span: Dict[str, object] = {
                "name": record.get("name"),
                "path": record.get("path"),
                "start_seq": record.get("start_seq", 0),
                "status": record.get("status"),
                "elapsed_s": record.get("elapsed_s", 0.0),
                "error": record.get("error"),
            }
            if isinstance(record.get("counters"), dict):
                counters = record["counters"]
                delta = _numeric_delta(counters, previous_counters)
                if delta:
                    span["counters_delta"] = delta
                previous_counters = counters
            spans.append(span)
        elif kind == "job":
            jobs["done"] += 1
            jobs["executions"] += int(record.get("executions", 0))
            jobs["elapsed_s"] = round(
                jobs["elapsed_s"] + float(record.get("elapsed_s", 0.0)), 6)
        elif kind == "job_failed":
            jobs["failed"] += 1
            failures.append({
                "job_id": record.get("job_id"),
                "error": record.get("error"),
            })
        elif kind == "trace_end":
            if isinstance(record.get("counters"), dict):
                counters = record["counters"]
        elif kind not in ("span_start",):
            events += 1
    spans.sort(key=lambda span: span["start_seq"])
    by_path: Dict[str, List[float]] = {}
    for span in spans:
        path = str(span.get("path") or span.get("name") or "?")
        by_path.setdefault(path, []).append(
            float(span.get("elapsed_s") or 0.0))
    span_paths: Dict[str, Dict[str, object]] = {}
    for path in sorted(by_path):
        elapsed = sorted(by_path[path])
        span_paths[path] = {
            "count": len(elapsed),
            "total_s": round(sum(elapsed), 6),
            "p50_s": round(_percentile(elapsed, 0.50), 6),
            "p90_s": round(_percentile(elapsed, 0.90), 6),
            "max_s": round(elapsed[-1], 6),
        }
    return {
        "kind": header.get("kind"),
        "schema_version": header.get("schema_version"),
        "version": header.get("version"),
        "context": header.get("context", {}),
        "records": len(records),
        "events": events,
        "spans": spans,
        "span_paths": span_paths,
        "jobs": jobs,
        "failures": failures,
        "counters": counters,
    }


def format_trace_stats(aggregate: Dict[str, object]) -> str:
    """Render :func:`aggregate_trace` output for humans (``repro stats``)."""
    context = aggregate.get("context") or {}
    head = " ".join(f"{key}={context[key]}"
                    for key in sorted(context) if context[key] is not None)
    lines = [
        f"trace: repro {aggregate.get('version')} "
        f"(schema v{aggregate.get('schema_version')}), "
        f"{aggregate.get('records')} records"
    ]
    if head:
        lines.append(f"  context: {head}")
    spans = aggregate.get("spans") or []
    if spans:
        lines.append("  spans:")
        for span in spans:
            depth = str(span.get("path", "")).count("/")
            indent = "    " + "  " * depth
            status = span.get("status")
            suffix = "" if status == "ok" else f"  [{status}: {span.get('error')}]"
            lines.append(f"{indent}{span.get('name')}  "
                         f"{float(span.get('elapsed_s') or 0.0):.3f}s{suffix}")
    jobs = aggregate.get("jobs") or {}
    if jobs.get("done") or jobs.get("failed"):
        lines.append(
            f"  jobs: {jobs.get('done', 0)} completed, "
            f"{jobs.get('failed', 0)} failed, "
            f"{jobs.get('executions', 0)} executions "
            f"({float(jobs.get('elapsed_s') or 0.0):.3f}s in workers)")
    for failure in aggregate.get("failures") or []:
        lines.append(f"    failed: {failure.get('job_id')}: "
                     f"{failure.get('error')}")
    counters = aggregate.get("counters") or {}
    if counters:
        lines.append("  counters:")
        for name in sorted(counters):
            value = counters[name]
            if isinstance(value, dict):  # histogram snapshot
                value = (f"count={value.get('count', 0)} "
                         f"sum={value.get('sum', 0)}")
            lines.append(f"    {name} = {value}")
    span_paths = aggregate.get("span_paths") or {}
    if span_paths:
        lines.append("  span paths (count, p50/p90/max seconds):")
        for path in sorted(span_paths):
            stats = span_paths[path]
            lines.append(
                f"    {path}  n={stats.get('count', 0)}  "
                f"{float(stats.get('p50_s') or 0.0):.3f}/"
                f"{float(stats.get('p90_s') or 0.0):.3f}/"
                f"{float(stats.get('max_s') or 0.0):.3f}")
    return "\n".join(lines)
