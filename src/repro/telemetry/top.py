"""``repro top`` — a live terminal dashboard over the fuzzing service.

One screenful, refreshed in place, answering the operator's first three
questions: *is the service healthy*, *is the queue draining*, and *what
is every worker doing right now*.  Two targets share the renderer:

* **Service URL** (``repro top http://127.0.0.1:8642``) — samples the
  HTTP API's ``/healthz``, ``/v1/queue``, ``/v1/fleet`` and
  ``/v1/campaigns`` endpoints (stdlib ``urllib`` only, same as ``repro
  submit``).
* **Run directory** (``repro top runs/<id>``) — samples a
  :class:`~repro.telemetry.runs.RunDirectory` manifest plus its live
  counters, for campaigns recorded by any scheduler in any process.

Sampling and rendering are separate, pure-ish steps (``sample`` →
``render_frame``) so tests drive them without a terminal or a ticking
clock; ``run_top`` owns the loop, the ANSI home-and-clear escape, and
the ``--once`` mode CI uses to assert one frame renders against a live
server.  Throughput comes from counter deltas between consecutive
samples, so the first frame shows totals only.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

#: Clear the terminal and home the cursor (plain ANSI; no curses dep).
ANSI_CLEAR = "\x1b[H\x1b[2J"


class TopError(RuntimeError):
    """The target cannot be sampled (unreachable URL, not a run dir)."""


# ---------------------------------------------------------------------------
# sampling
# ---------------------------------------------------------------------------

def _fetch_json(url: str, timeout: float) -> Dict[str, object]:
    request = urllib.request.Request(
        url, headers={"Accept": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        # Unready (/readyz 503) and error replies still carry JSON bodies.
        try:
            return json.loads(error.read().decode("utf-8"))
        except ValueError:
            raise TopError(f"HTTP {error.code} from {url}")
    except urllib.error.URLError as error:
        raise TopError(f"cannot reach {url}: {error.reason}")
    except (ValueError, OSError) as error:
        raise TopError(f"bad response from {url}: {error}")


def sample_service(base_url: str, timeout: float = 5.0) -> Dict[str, object]:
    """One observation of a live service via its HTTP API."""
    base = base_url.rstrip("/")
    return {
        "kind": "service",
        "target": base,
        "sampled_at": time.time(),
        "health": _fetch_json(base + "/healthz", timeout),
        "queue": _fetch_json(base + "/v1/queue", timeout),
        "fleet": _fetch_json(base + "/v1/fleet", timeout),
        "campaigns": _fetch_json(
            base + "/v1/campaigns", timeout).get("campaigns", []),
    }


def sample_run_dir(path: str) -> Dict[str, object]:
    """One observation of a recorded run directory."""
    from repro.telemetry.runs import RunDirectory, RunSchemaError

    run = RunDirectory(path)
    try:
        manifest = run.manifest()
    except (OSError, RunSchemaError, ValueError) as error:
        raise TopError(f"{path} is not a run directory: {error}")
    return {
        "kind": "run_dir",
        "target": path,
        "sampled_at": time.time(),
        "manifest": manifest,
        "counts": run.live_counts(),
    }


def sample(target: str, timeout: float = 5.0) -> Dict[str, object]:
    """Dispatch on target shape: URL → service API, path → run dir."""
    if target.startswith(("http://", "https://")):
        return sample_service(target, timeout=timeout)
    return sample_run_dir(target)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _num(record: Dict[str, object], key: str, default: float = 0) -> float:
    value = record.get(key, default)
    return float(value) if isinstance(value, (int, float)) else default


def _rate(current: Dict[str, object], previous: Optional[Dict[str, object]],
          path: List[str], key: str) -> Optional[float]:
    """Per-second delta of one nested numeric field between samples."""
    if previous is None:
        return None
    dt = _num(current, "sampled_at") - _num(previous, "sampled_at")
    if dt <= 0:
        return None

    def _dig(sample_record: Dict[str, object]) -> float:
        node: object = sample_record
        for part in path:
            if not isinstance(node, dict):
                return 0.0
            node = node.get(part, {})
        return _num(node, key) if isinstance(node, dict) else 0.0

    return max(0.0, (_dig(current) - _dig(previous)) / dt)


def _fmt_rate(rate: Optional[float], unit: str) -> str:
    return f"{rate:.1f} {unit}/s" if rate is not None else f"- {unit}/s"


def _fmt_age(seconds: object) -> str:
    if not isinstance(seconds, (int, float)):
        return "-"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(header.ljust(widths[index])
                       for index, header in enumerate(headers)).rstrip()]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index])
                               for index, cell in enumerate(row)).rstrip())
    return lines


def _render_service(current: Dict[str, object],
                    previous: Optional[Dict[str, object]]) -> List[str]:
    health = current.get("health") or {}
    queue = current.get("queue") or {}
    fleet = current.get("fleet") or {}
    counts = fleet.get("counts") or queue.get("fleet") or {}
    lines = [
        f"repro top — {current.get('target')}   "
        f"{health.get('status', '?')} v{health.get('version', '?')}   "
        f"up {_fmt_age(health.get('uptime_s'))}"
        + ("" if health.get("observe", True) else "   [observe off]"),
        f"queue: {int(_num(queue, 'pending'))} pending / "
        f"{int(_num(queue, 'leased'))} leased / "
        f"{int(_num(queue, 'done'))} done / "
        f"{int(_num(queue, 'failed'))} failed   "
        f"throughput {_fmt_rate(_rate(current, previous, ['queue'], 'done'), 'jobs')}",
        f"fleet: {int(_num(counts, 'workers'))} workers, "
        f"{int(_num(counts, 'alive'))} alive, "
        f"{int(_num(counts, 'busy'))} busy",
        "",
    ]
    workers = fleet.get("workers") or []
    rows = []
    for worker in workers:
        if not isinstance(worker, dict):
            continue
        current_job = worker.get("current_job")
        job = "-"
        if isinstance(current_job, dict):
            job = (f"{current_job.get('campaign_id', '?')} "
                   f"#{str(current_job.get('fingerprint', ''))[:8]} "
                   f"(attempt {current_job.get('attempt', '?')})")
        utilization = worker.get("utilization")
        rows.append([
            str(worker.get("name", "?")),
            "busy" if worker.get("busy") else (
                "idle" if worker.get("alive") else "dead"),
            str(int(_num(worker, "completed"))),
            (f"{float(utilization) * 100:.0f}%"
             if isinstance(utilization, (int, float)) else "-"),
            _fmt_age(worker.get("heartbeat_age_s")),
            job,
        ])
    if rows:
        lines.extend(_table(
            ["WORKER", "STATE", "JOBS", "UTIL", "HB AGE", "CURRENT"], rows))
        lines.append("")
    campaign_rows = []
    for record in current.get("campaigns") or []:
        if not isinstance(record, dict):
            continue
        gadgets = "-"
        summary = record.get("summary")
        if isinstance(summary, dict):
            gadgets = str(sum(int(group.get("unique_gadgets", 0))
                              for group in summary.get("groups", [])))
        campaign_rows.append([
            str(record.get("campaign_id", "?")),
            str(record.get("status", "?")),
            f"{record.get('rounds_completed', 0)}/{record.get('rounds', '?')}",
            f"{record.get('jobs_done', 0)}/{record.get('jobs_total', '?')}",
            gadgets,
        ])
    if campaign_rows:
        lines.extend(_table(
            ["CAMPAIGN", "STATUS", "ROUNDS", "JOBS", "GADGETS"],
            campaign_rows))
    else:
        lines.append("no campaigns submitted")
    return lines


#: run-dir counters worth a dashboard row, in display order.
_RUN_COUNTS = (
    "campaign.jobs_completed",
    "campaign.rounds_completed",
    "campaign.unique_sites",
    "engine.executions",
    "engine.instructions",
    "fuzz.executions",
)


def _render_run_dir(current: Dict[str, object],
                    previous: Optional[Dict[str, object]]) -> List[str]:
    manifest = current.get("manifest") or {}
    counts = current.get("counts") or {}
    lines = [
        f"repro top — run {manifest.get('run_id', '?')} "
        f"[{manifest.get('status', '?')}]   {current.get('target')}",
        f"command: {manifest.get('command', '?')}   "
        f"created {manifest.get('created_at', '?')}",
        f"throughput "
        f"{_fmt_rate(_rate(current, previous, ['counts'], 'engine.executions'), 'execs')}",
        "",
    ]
    rows = [[name, str(counts[name])]
            for name in _RUN_COUNTS if name in counts]
    others = sorted(name for name in counts
                    if name not in _RUN_COUNTS
                    and name.startswith(("campaign.", "service.")))
    rows.extend([name, str(counts[name])] for name in others[:12])
    if rows:
        lines.extend(_table(["COUNTER", "VALUE"], rows))
    else:
        lines.append("no metrics snapshots yet")
    return lines


def render_frame(current: Dict[str, object],
                 previous: Optional[Dict[str, object]] = None) -> str:
    """One dashboard frame (no trailing newline, no ANSI escapes)."""
    if current.get("kind") == "service":
        lines = _render_service(current, previous)
    else:
        lines = _render_run_dir(current, previous)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# the loop
# ---------------------------------------------------------------------------

def run_top(target: str, interval: float = 2.0, once: bool = False,
            stream=None, timeout: float = 5.0) -> int:
    """The ``repro top`` command body; returns a process exit code."""
    out = stream if stream is not None else sys.stdout
    previous: Optional[Dict[str, object]] = None
    try:
        while True:
            current = sample(target, timeout=timeout)
            frame = render_frame(current, previous)
            if once:
                out.write(frame + "\n")
                return 0
            out.write(ANSI_CLEAR + frame + "\n")
            out.flush()
            previous = current
            time.sleep(max(0.1, interval))
    except TopError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0
