"""``repro.telemetry`` — metrics, tracing, live progress and profiling.

The observability layer of the reproduction.  One :class:`Telemetry`
object bundles the four instruments:

* a :class:`~repro.telemetry.metrics.MetricsRegistry` of counters /
  gauges / histograms that the fuzzer, both emulator engines, the
  campaign scheduler and the hardening pipeline update;
* an optional :class:`~repro.telemetry.tracing.TraceWriter` emitting a
  versioned JSONL span/event trace (``repro stats`` aggregates it);
* an optional :class:`~repro.telemetry.progress.HeartbeatReporter`
  rendering live ``[progress]`` lines from the registry;
* an optional :class:`~repro.telemetry.profiler.EngineProfiler`
  counting per-opcode/per-address hot spots inside an engine.

Telemetry is observation-only — it never feeds back into execution, so
results are bit-identical with it on or off — and costs one ``is not
None`` check per execution when disabled (the default).  Install a
bundle process-wide with :func:`repro.telemetry.context.session` (what
``Pipeline.telemetry(...)`` and the CLI ``--progress``/``--trace`` flags
do), or hand one to a specific runtime via
``TeapotConfig(telemetry=...)``.  See ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._version import __version__
from repro.telemetry import context
from repro.telemetry.benchdiff import (
    bench_history,
    diff_bench,
    format_diff_table,
    load_bench_snapshot,
)
from repro.telemetry.export import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsExporter,
    render_prometheus,
    serve_metrics,
)
from repro.telemetry.logging import LEVELS, StructuredLogger, parse_level
from repro.telemetry.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_counts,
)
from repro.telemetry.profiler import EngineProfiler
from repro.telemetry.progress import HeartbeatReporter
from repro.telemetry.report import render_flamegraph, render_html_report
from repro.telemetry.runs import (
    RUN_KIND,
    RUN_SCHEMA_VERSION,
    RunDirectory,
    RunRegistry,
)
from repro.telemetry.spool import MetricsSpool
from repro.telemetry.tracing import (
    TRACE_KIND,
    TRACE_SCHEMA_VERSION,
    TraceError,
    TraceWriter,
    aggregate_trace,
    derive_span_id,
    format_trace_stats,
    new_trace_id,
    read_trace,
)

try:
    from contextlib import nullcontext as _nullcontext
except ImportError:  # pragma: no cover - py<3.7 has no nullcontext
    from contextlib import contextmanager as _cm

    @_cm
    def _nullcontext():
        yield


class Telemetry:
    """One run's observability bundle: registry + trace + progress + profile.

    All helper methods tolerate missing instruments (no trace writer →
    :meth:`event` is a no-op, :meth:`span` a null context), so
    instrumented code guards only on "is a Telemetry active at all".
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[TraceWriter] = None,
        heartbeat: Optional[HeartbeatReporter] = None,
        profiler: Optional[EngineProfiler] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        if trace is not None and trace.registry is None:
            trace.registry = self.registry
        self.heartbeat = heartbeat
        self.profiler = profiler
        self._owns_trace = False
        #: optional :class:`~repro.telemetry.spool.MetricsSpool` attached by
        #: the campaign layer — live worker counters across the fork
        #: boundary (see :meth:`merged_snapshot`).
        self.spool = None
        #: optional :class:`~repro.telemetry.runs.RunDirectory` this run
        #: records into (manifest + trace + metrics snapshots).
        self.run_dir = None

    @classmethod
    def create(
        cls,
        trace=None,
        progress: bool = False,
        interval: float = 5.0,
        profile_engine: bool = False,
        context_info: Optional[Dict[str, object]] = None,
        sink=None,
    ) -> "Telemetry":
        """Build a bundle from plain options (what the CLI flags map to).

        ``trace`` is a path or an existing :class:`TraceWriter`; a path
        is opened (and later closed) by this bundle.  ``sink`` overrides
        where heartbeat lines go (default: stderr).
        """
        registry = MetricsRegistry()
        writer = None
        owns = False
        if trace is not None:
            if isinstance(trace, TraceWriter):
                writer = trace
                if writer.registry is None:
                    writer.registry = registry
            else:
                writer = TraceWriter(trace, context=context_info,
                                     registry=registry)
                owns = True
        heartbeat = None
        if progress:
            heartbeat = HeartbeatReporter(registry, interval=interval,
                                          sink=sink)
        profiler = EngineProfiler() if profile_engine else None
        telemetry = cls(registry=registry, trace=writer, heartbeat=heartbeat,
                        profiler=profiler)
        telemetry._owns_trace = owns
        return telemetry

    # -- convenience accessors ----------------------------------------------
    def counter_add(self, name: str, amount: int = 1) -> None:
        self.registry.counter(name).inc(amount)

    def gauge_set(self, name: str, value) -> None:
        self.registry.gauge(name).set(value)

    def event(self, type_: str, **fields) -> None:
        """Emit a trace event (no-op without a trace writer)."""
        if self.trace is not None:
            self.trace.event(type_, **fields)

    def span(self, name: str, **fields):
        """A trace span context (a null context without a trace writer)."""
        if self.trace is not None:
            return self.trace.span(name, **fields)
        return _nullcontext()

    # -- engine hook ---------------------------------------------------------
    def record_execution(self, emulator, result) -> None:
        """Fold one emulator run into the registry.

        Called by :meth:`repro.runtime.emulator.Emulator.run` after each
        execution.  Per-run deltas of the controller's cumulative
        statistics are tracked through a mark stored on the controller,
        so several live emulators (native + instrumented, per-variant
        rebuilds) aggregate correctly.
        """
        registry = self.registry
        registry.counter("engine.executions").inc()
        registry.counter("engine.instructions").inc(result.arch_instructions)
        registry.counter("engine.steps").inc(result.steps)
        registry.counter("engine.cycles").inc(result.cycles)
        registry.histogram("engine.instructions_per_exec").observe(
            result.arch_instructions)

        controller = emulator.controller
        if controller is not None:
            stats = controller.stats
            previous = getattr(controller, "_telemetry_mark", None)
            if previous is None:
                previous = (0, 0, 0, {})
            registry.counter("engine.simulations").inc(
                stats.simulations_started - previous[0])
            registry.counter("engine.rollbacks").inc(
                stats.rollbacks - previous[1])
            registry.counter("engine.simulated_instructions").inc(
                stats.simulated_instructions - previous[2])
            for model, count in stats.model_entries.items():
                registry.counter(f"engine.entered.{model}").inc(
                    count - previous[3].get(model, 0))
            controller._telemetry_mark = (
                stats.simulations_started, stats.rollbacks,
                stats.simulated_instructions, dict(stats.model_entries),
            )
            registry.gauge("engine.max_nesting_depth").max(
                stats.max_depth_reached)
            registry.gauge("engine.journal_depth_max").max(
                getattr(controller, "undo_depth_max", 0))

        fallbacks = getattr(emulator, "_fallback_addresses", None)
        if fallbacks is not None:
            registry.gauge("engine.fallback_thunks").set(len(fallbacks))

        blocks = getattr(emulator, "_blocks_nosim", None)
        if blocks is not None:  # jit engine
            registry.gauge("engine.jit.compiled_blocks").set(len(blocks))
            registry.gauge("engine.jit.compiled_blocks_sim").set(
                len(emulator._blocks_sim))
            registry.gauge("engine.jit.inlined_instructions").set(
                getattr(emulator, "_jit_inline_instructions", 0))
            cache = getattr(emulator, "_jit_cache", None)
            if cache is not None:
                for key, value in cache.stats.items():
                    registry.gauge(f"engine.jit.cache_{key}").set(value)

    def merged_counts(self) -> Dict[str, object]:
        """Live counter/gauge values including the unconsumed spool tail.

        The parent registry only learns worker counters at round merges;
        mid-round, forked workers have already appended their per-job
        deltas to the spool.  Exporters (``/metrics``, ``/status``) call
        this to serve totals that increase *during* a round without ever
        double counting: the spool tail past ``consumed_offset`` is
        exactly what the registry has not absorbed yet.
        """
        merged: Dict[str, object] = {}
        for name, counter in self.registry.counters().items():
            merged[name] = counter.value
        for name, gauge in self.registry.gauges().items():
            merged[name] = gauge.value
        if self.spool is not None:
            for name, value in self.spool.unconsumed().items():
                base = merged.get(name, 0)
                if isinstance(base, (int, float)):
                    merged[name] = base + value
                else:
                    merged[name] = value
        return dict(sorted(merged.items()))

    # -- lifecycle -----------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-ready section for ``RunResult``/``BENCH_*.json`` embedding."""
        record: Dict[str, object] = {
            "version": __version__,
            "metrics": self.registry.snapshot(),
        }
        if self.profiler is not None:
            record["profile"] = self.profiler.snapshot()
        return record

    def close(self) -> None:
        """Final heartbeat plus trace shutdown (closes an owned sink)."""
        if self.heartbeat is not None:
            self.heartbeat.maybe_beat(force=True)
        if self.trace is not None and self._owns_trace:
            self.trace.close()


__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "merge_counts",
    "TraceWriter",
    "TraceError",
    "TRACE_KIND",
    "TRACE_SCHEMA_VERSION",
    "read_trace",
    "aggregate_trace",
    "format_trace_stats",
    "HeartbeatReporter",
    "EngineProfiler",
    "context",
    "__version__",
    # campaign observatory (PR 8)
    "MetricsSpool",
    "MetricsExporter",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "serve_metrics",
    "RunDirectory",
    "RunRegistry",
    "RUN_KIND",
    "RUN_SCHEMA_VERSION",
    "render_html_report",
    "render_flamegraph",
    "diff_bench",
    "bench_history",
    "format_diff_table",
    "load_bench_snapshot",
    # service observatory (PR 10)
    "StructuredLogger",
    "parse_level",
    "LEVELS",
    "LATENCY_BUCKETS_S",
    "new_trace_id",
    "derive_span_id",
]
