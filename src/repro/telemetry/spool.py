"""The worker metrics spool: live counters across the fork boundary.

The active-telemetry slot is pid-guarded (see
:mod:`repro.telemetry.context`): a forked pool worker sees no telemetry,
so before this module existed the workers' ``fuzz.*`` and ``engine.*``
counters — including the jit engine's compiled-block-cache statistics —
were simply invisible until PR 8.  The spool closes that gap with two
halves:

* **Worker side** — the scheduler calls :func:`enable` *before* creating
  its ``fork`` pool, so every worker inherits the spool coordinates.
  :func:`worker_telemetry` answers a fresh registry-only
  :class:`~repro.telemetry.Telemetry` only in such a forked child; the
  worker runs its job under it, then :func:`collect_counts` extracts the
  per-job counter deltas (plus ``engine.jit.cache.*`` deltas of the
  process-wide compiled-block cache) and :func:`append_counts` appends
  one JSON line to the spool file.  Appends are single ``write`` calls in
  ``O_APPEND`` mode, so concurrent workers never interleave partial
  lines.

* **Scheduler side** — a :class:`MetricsSpool` tracks how much of the
  file has already been folded into the parent registry (the scheduler
  merges each :attr:`WorkerResult.telemetry_counts` at round end, then
  calls :meth:`MetricsSpool.consume`).  :meth:`MetricsSpool.unconsumed`
  sums only the tail beyond that offset, which is what lets the
  ``/metrics`` exporter serve *live* totals mid-round without ever double
  counting a job.

Spool file format (``spool.jsonl``): one JSON object per line with
``pid``, ``job_id`` and ``counts`` (counter name → per-job delta).  The
format is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.telemetry.metrics import merge_counts

#: pid of the process that enabled the spool (the campaign scheduler);
#: inherited over ``fork`` so children can tell they are workers.
_PARENT_PID: Optional[int] = None
#: spool file path the workers append to; inherited over ``fork``.
_SPOOL_PATH: Optional[str] = None


def enable(path: str) -> None:
    """Arm the spool for workers forked *after* this call."""
    global _PARENT_PID, _SPOOL_PATH
    _PARENT_PID = os.getpid()
    _SPOOL_PATH = path


def disable() -> None:
    """Disarm the spool (campaign over; idempotent)."""
    global _PARENT_PID, _SPOOL_PATH
    _PARENT_PID = None
    _SPOOL_PATH = None


def is_worker() -> bool:
    """True in a forked child of a process that called :func:`enable`."""
    return _PARENT_PID is not None and os.getpid() != _PARENT_PID


def worker_spool_path() -> Optional[str]:
    """The spool file a worker should append to (None outside workers)."""
    return _SPOOL_PATH if is_worker() else None


def worker_telemetry():
    """A fresh registry-only telemetry bundle — in forked workers only.

    Answers ``None`` in the scheduler process itself (there the parent's
    telemetry is live and counts everything directly; a second registry
    would double count) and whenever no campaign armed the spool.
    """
    if not is_worker():
        return None
    from repro.telemetry import Telemetry

    return Telemetry()


def collect_counts(telemetry,
                   cache_stats_before: Optional[Dict[str, int]] = None,
                   ) -> Dict[str, int]:
    """One job's counter deltas from a worker-local telemetry bundle.

    Only *counters* are collected — they are per-job deltas by
    construction (the bundle is created fresh per job) and sum cleanly
    across jobs, workers and rounds.  Gauges (corpus size, compiled-block
    table sizes) are point-in-time per process and are deliberately left
    out.  The jit compiled-block cache is the exception: its statistics
    are cumulative per *process*, so the caller snapshots them before the
    job (``cache_stats_before``) and the per-job delta is emitted under
    ``engine.jit.cache.<key>``.
    """
    counts: Dict[str, int] = {}
    for name, counter in telemetry.registry.counters().items():
        if counter.value:
            counts[name] = counter.value
    if cache_stats_before is not None:
        after = jit_cache_stats()
        for key, value in after.items():
            delta = value - cache_stats_before.get(key, 0)
            if delta:
                counts[f"engine.jit.cache.{key}"] = delta
    return counts


def jit_cache_stats() -> Dict[str, int]:
    """Snapshot of the process-wide compiled-block cache statistics."""
    from repro.runtime.jitcache import shared_cache

    return dict(shared_cache().stats)


def append_counts(path: str, job_id: str, counts: Dict[str, int]) -> None:
    """Append one job's counter record to the spool file.

    A single sub-4-KiB ``write`` in append mode is atomic on POSIX, so
    parallel workers cannot corrupt each other's lines; failures (spool
    directory vanished mid-campaign) are swallowed — the same counts
    still travel home in the :class:`WorkerResult`.
    """
    record = {"pid": os.getpid(), "job_id": job_id,
              "counts": dict(sorted(counts.items()))}
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    except OSError:
        pass


def read_records(path: str, offset: int = 0,
                 ) -> Tuple[List[Dict[str, object]], int]:
    """Parse spool records starting at byte ``offset``.

    Returns the records and the byte offset just past the last *complete*
    line — a worker's in-flight partial line is left for the next read.
    Unparseable complete lines are skipped (a torn write survives as one
    lost sample, never a dead spool).
    """
    records: List[Dict[str, object]] = []
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except OSError:
        return records, offset
    end = data.rfind(b"\n")
    if end < 0:
        return records, offset
    for line in data[:end].split(b"\n"):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(record, dict):
            records.append(record)
    return records, offset + end + 1


def sum_counts(records: List[Dict[str, object]]) -> Dict[str, int]:
    """Merge the ``counts`` of several spool records by summing."""
    totals: Dict[str, int] = {}
    for record in records:
        counts = record.get("counts")
        if isinstance(counts, dict):
            merge_counts(totals, {str(k): int(v) for k, v in counts.items()})
    return totals


class MetricsSpool:
    """The scheduler-side view of one spool file.

    Tracks the byte offset up to which records have been folded into the
    parent metrics registry, so live exports merge exactly the tail.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        #: bytes of the file already merged into the parent registry.
        self.consumed_offset = 0
        # Ensure the file exists so readers (repro monitor) never race
        # a worker's first append.
        try:
            with open(path, "a", encoding="utf-8"):
                pass
        except OSError:
            pass

    def unconsumed(self) -> Dict[str, int]:
        """Summed counts of every record past the consumed offset."""
        records, _ = read_records(self.path, self.consumed_offset)
        return sum_counts(records)

    def unconsumed_records(self) -> List[Dict[str, object]]:
        """The raw records past the consumed offset (status endpoints)."""
        records, _ = read_records(self.path, self.consumed_offset)
        return records

    def consume(self) -> None:
        """Advance the consumed offset past every complete line.

        Called after the scheduler merged a round's ``WorkerResult``
        counters into its registry — those registry totals now cover
        everything the spool recorded, so the tail restarts empty.
        """
        _, self.consumed_offset = read_records(self.path,
                                               self.consumed_offset)
