"""Opt-in engine profiling: per-opcode and per-address hot-spot counts.

The profiler wraps an emulator's dispatch structures *in place* — the
fast engine's decoded-thunk trace (one wrapper per instruction address,
so fused and fallback thunks are counted where they live), the legacy
engine's opcode dispatch table, or the jit engine's compiled-block
tables — and counts executions per opcode and per address.  Wrapping
costs a Python call per retired thunk (per retired *block* on the jit
engine), so this is strictly opt-in
(``Pipeline.telemetry(profile_engine=True)`` or
``repro fuzz --profile-engine``); nothing is touched unless a profiler
is installed before the emulator's first ``run()``.

On the jit engine a block wrapper attributes one execution to every
instruction address in the block's span (``_block_spans_*``): compiled
blocks have no per-instruction dispatch left to hook, so a conditional
early exit still counts the block's tail — superblock-granular
attribution, exact at block heads.  Instructions that fall back to
thunks keep exact counts through the trace wrapper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class EngineProfiler:
    """Counts executed instructions per opcode and per code address."""

    def __init__(self, hot_spots: int = 20) -> None:
        #: executions per lower-case opcode name.
        self.per_opcode: Dict[str, int] = {}
        #: executions per instruction address (fast engine: per thunk).
        self.per_address: Dict[int, int] = {}
        self.hot_spot_limit = hot_spots
        self._attached: set = set()
        #: (start, end, name) function ranges for hot-spot attribution.
        self._symbols: List[Tuple[int, int, str]] = []

    # -- attachment ----------------------------------------------------------
    def attach(self, emulator) -> None:
        """Wrap one emulator's dispatch path (idempotent per instance)."""
        key = id(emulator)
        if key in self._attached:
            return
        self._attached.add(key)
        for sym in emulator.binary.function_symbols():
            self._symbols.append((sym.address, sym.address + sym.size,
                                  sym.name))
        trace = getattr(emulator, "_trace", None)
        if getattr(emulator, "_blocks_nosim", None) is not None:
            self._wrap_blocks(emulator)
        if trace is not None:
            self._wrap_trace(emulator, trace)
        else:
            self._wrap_dispatch(emulator)

    def _wrap_trace(self, emulator, trace) -> None:
        """Fast engine: wrap every decoded thunk with a counting shim."""
        per_address = self.per_address
        per_opcode = self.per_opcode
        for addr, thunk in list(trace.items()):
            name = emulator.instructions[addr].opcode.name.lower()

            def counting(m, _thunk=thunk, _addr=addr, _name=name,
                         _pa=per_address, _po=per_opcode):
                _pa[_addr] = _pa.get(_addr, 0) + 1
                _po[_name] = _po.get(_name, 0) + 1
                return _thunk(m)

            trace[addr] = counting

    def _wrap_blocks(self, emulator) -> None:
        """Jit engine: wrap both compiled-block tables with counting shims.

        Each table entry stays a ``(block fn, fuel need)`` tuple — the
        main loop's fuel check reads ``entry[1]`` — and one retired
        block attributes an execution to every instruction address in
        its span.
        """
        per_address = self.per_address
        per_opcode = self.per_opcode
        instructions = emulator.instructions
        for blocks, spans in ((emulator._blocks_sim,
                               emulator._block_spans_sim),
                              (emulator._blocks_nosim,
                               emulator._block_spans_nosim)):
            for addr, (fn, need) in list(blocks.items()):
                span = spans.get(addr, (addr,))
                names = tuple(instructions[a].opcode.name.lower()
                              for a in span if a in instructions)

                def counting(m, _fn=fn, _span=span, _names=names,
                             _pa=per_address, _po=per_opcode):
                    for a in _span:
                        _pa[a] = _pa.get(a, 0) + 1
                    for n in _names:
                        _po[n] = _po.get(n, 0) + 1
                    return _fn(m)

                blocks[addr] = (counting, need)

    def _wrap_dispatch(self, emulator) -> None:
        """Legacy engine: wrap the per-opcode handler table."""
        per_address = self.per_address
        per_opcode = self.per_opcode
        for opcode, handler in list(emulator._dispatch.items()):
            name = opcode.name.lower()

            def counting(instr, _handler=handler, _name=name,
                         _pa=per_address, _po=per_opcode):
                _pa[instr.address] = _pa.get(instr.address, 0) + 1
                _po[_name] = _po.get(_name, 0) + 1
                return _handler(instr)

            emulator._dispatch[opcode] = counting

    # -- reporting -----------------------------------------------------------
    def _function_for(self, address: int) -> str:
        for start, end, name in self._symbols:
            if start <= address < end:
                return name
        return "?"

    def hot_spots(self) -> List[Dict[str, object]]:
        """The most-executed addresses, hottest first, with attribution."""
        ranked = sorted(self.per_address.items(),
                        key=lambda item: (-item[1], item[0]))
        return [
            {"address": f"{addr:#x}", "count": count,
             "function": self._function_for(addr)}
            for addr, count in ranked[:self.hot_spot_limit]
        ]

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready profile: opcode histogram + hot-spot table."""
        return {
            "per_opcode": dict(sorted(self.per_opcode.items(),
                                      key=lambda item: (-item[1], item[0]))),
            "hot_spots": self.hot_spots(),
            "addresses_seen": len(self.per_address),
        }
