"""Emulator fast-path throughput: decoded-trace engine vs legacy engine.

The acceptance bar for the fast engine (``repro.runtime.fastpath``) is a
≥ 2× executions/second speedup on the Kocher-sample fuzzing loop with
bit-identical results; the differential suite
(``tests/runtime/test_differential.py``) proves the identity, this
benchmark proves the speedup and demonstrates it on a real target (jsmn).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import SCALE
from repro.core.config import TeapotConfig
from repro.core.teapot import TeapotRewriter, TeapotRuntime
from repro.fuzzing.fuzzer import Fuzzer, FuzzTarget
from repro.targets import get_target
from repro.targets.injection import compile_vanilla


def _timed_chunk(fuzzer, iterations: int):
    """One timed fuzzing chunk; returns (exec/s, result digest)."""
    started = time.perf_counter()
    result = fuzzer.run_chunk(iterations)
    elapsed = time.perf_counter() - started
    digest = (
        result.total_cycles,
        result.total_steps,
        result.crashes,
        result.hangs,
        result.normal_coverage,
        result.speculative_coverage,
        result.reports.to_dicts(),
    )
    return iterations / elapsed, digest


def _compare_engines(target_name: str, iterations: int, seed: int = 7,
                     repetitions: int = 5):
    """Per-chunk speedup of the fast engine over legacy, noise-robust.

    Both engines replay the exact same deterministic input sequence, chunk
    for chunk, and each chunk is timed on legacy immediately followed by
    fast — so the paired rates see the same inputs and (nearly) the same
    machine conditions.  The reported speedup is the *second-highest*
    paired ratio: robust both to a load spike sinking the fast half of a
    chunk and to one sinking the legacy half (which would inflate the
    maximum).
    """
    target = get_target(target_name)
    binary = TeapotRewriter(TeapotConfig()).instrument(compile_vanilla(target))
    fuzzers = {}
    for engine in ("legacy", "fast"):
        runtime = TeapotRuntime(binary, config=TeapotConfig(engine=engine))
        fuzzers[engine] = Fuzzer(FuzzTarget(runtime), seeds=list(target.seeds),
                                 seed=seed)
        fuzzers[engine].run_chunk(max(5, iterations // 10))  # warmup

    ratios = []
    legacy_rates, fast_rates = [], []
    for _ in range(repetitions):
        legacy_rate, legacy_digest = _timed_chunk(fuzzers["legacy"], iterations)
        fast_rate, fast_digest = _timed_chunk(fuzzers["fast"], iterations)
        assert fast_digest == legacy_digest, (
            f"{target_name}: engines diverged — fast-path results are wrong"
        )
        legacy_rates.append(legacy_rate)
        fast_rates.append(fast_rate)
        ratios.append(fast_rate / legacy_rate)
    ratios.sort()
    speedup = ratios[-2] if len(ratios) > 1 else ratios[0]
    print(f"\n{target_name}: legacy {max(legacy_rates):8.1f} exec/s | "
          f"fast {max(fast_rates):8.1f} exec/s | "
          f"speedup {speedup:.2f}x "
          f"(chunks: {', '.join(f'{r:.2f}x' for r in ratios)})")
    return speedup, {
        "legacy_exec_per_sec": round(max(legacy_rates), 1),
        "fast_exec_per_sec": round(max(fast_rates), 1),
        "speedup": round(speedup, 2),
        "cycles_per_exec": round(legacy_digest[0] / iterations, 1),
        "engine": "fast-vs-legacy",
    }


@pytest.mark.paper
def test_kocher_fuzzing_loop_speedup(bench_record):
    """Fast engine fuzzes the Kocher samples ≥ 2× faster than legacy."""
    speedup, metrics = _compare_engines("gadgets", iterations=400 * SCALE)
    bench_record("emulator_throughput_gadgets", **metrics)
    assert speedup >= 2.0, (
        f"fast engine only {speedup:.2f}x on the Kocher-sample fuzzing loop "
        f"(acceptance floor is 2.0x)"
    )


@pytest.mark.paper
def test_jsmn_fuzzing_loop_speedup(bench_record):
    """The speedup carries over to a real target (jsmn)."""
    speedup, metrics = _compare_engines("jsmn", iterations=8 * SCALE, seed=5,
                                        repetitions=2)
    bench_record("emulator_throughput_jsmn", **metrics)
    assert speedup >= 1.5, (
        f"fast engine only {speedup:.2f}x on jsmn (floor is 1.5x)"
    )
