"""Emulator engine-tier throughput: fast and jit engines vs legacy.

The acceptance bars, engine by engine, with bit-identity proven by the
differential suite (``tests/runtime/test_differential.py``) and the
speedups proven here:

- ``fast`` (``repro.runtime.fastpath``): ≥ 2× executions/second over
  ``legacy`` on the Kocher-sample fuzzing loop, carrying over to a real
  target (jsmn, ≥ 1.5×).
- ``jit`` (``repro.runtime.jit``): ≥ 2× architectural executions/second
  over ``fast`` on dense perf-input streams of both workloads (the
  ``jit_speedup_vs_fast`` BENCH fields below).

Every registered engine is measured — a newly plugged-in engine shows up
in the BENCH rows automatically; only the engines named above carry
floors.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import SCALE
from repro.core.config import TeapotConfig
from repro.core.teapot import TeapotRewriter, TeapotRuntime
from repro.fuzzing.fuzzer import Fuzzer, FuzzTarget
from repro.runtime.fastpath import engine_names, resolve_engine
from repro.targets import get_target
from repro.targets.injection import compile_vanilla


def _timed_chunk(fuzzer, iterations: int):
    """One timed fuzzing chunk; returns (exec/s, result digest)."""
    started = time.perf_counter()
    result = fuzzer.run_chunk(iterations)
    elapsed = time.perf_counter() - started
    digest = (
        result.total_cycles,
        result.total_steps,
        result.crashes,
        result.hangs,
        result.normal_coverage,
        result.speculative_coverage,
        result.reports.to_dicts(),
    )
    return iterations / elapsed, digest


def _compare_engines(target_name: str, iterations: int, seed: int = 7,
                     repetitions: int = 5):
    """Per-chunk speedup of every registered engine over legacy.

    All engines replay the exact same deterministic input sequence, chunk
    for chunk, and each chunk is timed across the engines back to back —
    so the paired rates see the same inputs and (nearly) the same machine
    conditions.  The reported speedup per engine is the *second-highest*
    paired ratio: robust both to a load spike sinking the measured half
    of a chunk and to one sinking the legacy half (which would inflate
    the maximum).
    """
    target = get_target(target_name)
    binary = TeapotRewriter(TeapotConfig()).instrument(compile_vanilla(target))
    engines = sorted(engine_names(), key=lambda name: name != "legacy")
    fuzzers = {}
    for engine in engines:
        runtime = TeapotRuntime(binary, config=TeapotConfig(engine=engine))
        fuzzers[engine] = Fuzzer(FuzzTarget(runtime), seeds=list(target.seeds),
                                 seed=seed)
        fuzzers[engine].run_chunk(max(5, iterations // 10))  # warmup

    rates = {engine: [] for engine in engines}
    ratios = {engine: [] for engine in engines if engine != "legacy"}
    for _ in range(repetitions):
        digests = {}
        for engine in engines:
            rate, digests[engine] = _timed_chunk(fuzzers[engine], iterations)
            rates[engine].append(rate)
            if engine != "legacy":
                ratios[engine].append(rate / rates["legacy"][-1])
        for engine in engines:
            assert digests[engine] == digests["legacy"], (
                f"{target_name}: {engine} diverged from legacy — "
                f"engine results are wrong"
            )
    speedups = {}
    for engine, engine_ratios in ratios.items():
        engine_ratios.sort()
        speedups[engine] = (engine_ratios[-2] if len(engine_ratios) > 1
                            else engine_ratios[0])
    summary = " | ".join(
        f"{engine} {max(rates[engine]):8.1f} exec/s"
        + (f" ({speedups[engine]:.2f}x)" if engine in speedups else "")
        for engine in engines
    )
    print(f"\n{target_name}: {summary}")
    metrics = {"cycles_per_exec": round(digests["legacy"][0] / iterations, 1)}
    for engine in engines:
        metrics[f"{engine}_exec_per_sec"] = round(max(rates[engine]), 1)
    for engine, speedup in speedups.items():
        metrics[f"{engine}_speedup_vs_legacy"] = round(speedup, 2)
    return speedups, metrics


def _bare_throughput(target_name: str, size: int, runs: int,
                     repetitions: int = 7):
    """Architectural-execution throughput of jit vs fast, noise-robust.

    Runs a dense perf-input stream straight through bare ``fast`` and
    ``jit`` emulators (no fuzzing loop), in alternating-order chunks,
    and compares the *minimum* chunk time per engine — scheduling noise
    only ever adds time, so the min-of-chunks ratio is the stable
    estimator on a noisy host.
    """
    target = get_target(target_name)
    binary = target.compile()
    data = target.perf_input(size)
    emulators = {engine: resolve_engine(engine)[0](binary)
                 for engine in ("fast", "jit")}
    digests = {}
    for engine, emulator in emulators.items():  # warmup + identity guard
        result = emulator.run(data)
        digests[engine] = (result.status, result.exit_status, result.steps,
                           result.cycles, result.arch_instructions)
    assert digests["jit"] == digests["fast"], (
        f"{target_name}: jit diverged from fast on the perf input"
    )
    best = {"fast": None, "jit": None}
    for rep in range(repetitions):
        order = ("fast", "jit") if rep % 2 == 0 else ("jit", "fast")
        for engine in order:
            emulator = emulators[engine]
            started = time.perf_counter()
            for _ in range(runs):
                emulator.run(data)
            elapsed = time.perf_counter() - started
            if best[engine] is None or elapsed < best[engine]:
                best[engine] = elapsed
    speedup = best["fast"] / best["jit"]
    steps = digests["fast"][2]
    print(f"\n{target_name} bare: fast {runs / best['fast']:8.1f} exec/s | "
          f"jit {runs / best['jit']:8.1f} exec/s | "
          f"jit speedup {speedup:.2f}x ({steps} steps/exec)")
    return speedup, {
        "fast_exec_per_sec": round(runs / best["fast"], 1),
        "jit_exec_per_sec": round(runs / best["jit"], 1),
        "jit_speedup_vs_fast": round(speedup, 2),
        "steps_per_exec": steps,
    }


@pytest.mark.paper
def test_kocher_fuzzing_loop_speedup(bench_record):
    """Fast engine fuzzes the Kocher samples ≥ 2× faster than legacy."""
    speedups, metrics = _compare_engines("gadgets", iterations=400 * SCALE)
    bench_record("emulator_throughput_gadgets", **metrics)
    assert speedups["fast"] >= 2.0, (
        f"fast engine only {speedups['fast']:.2f}x on the Kocher-sample "
        f"fuzzing loop (acceptance floor is 2.0x)"
    )
    assert speedups["jit"] >= 2.0, (
        f"jit engine only {speedups['jit']:.2f}x over legacy on the "
        f"Kocher-sample fuzzing loop (must at least hold the fast floor)"
    )


@pytest.mark.paper
def test_jsmn_fuzzing_loop_speedup(bench_record):
    """The speedups carry over to a real target (jsmn)."""
    speedups, metrics = _compare_engines("jsmn", iterations=8 * SCALE, seed=5,
                                         repetitions=2)
    bench_record("emulator_throughput_jsmn", **metrics)
    assert speedups["fast"] >= 1.5, (
        f"fast engine only {speedups['fast']:.2f}x on jsmn (floor is 1.5x)"
    )
    assert speedups["jit"] >= 1.5, (
        f"jit engine only {speedups['jit']:.2f}x over legacy on jsmn "
        f"(must at least hold the fast floor)"
    )


@pytest.mark.paper
def test_jit_bare_throughput_gadgets(bench_record):
    """Jit tier executes dense gadget streams ≥ 2× faster than fast."""
    speedup, metrics = _bare_throughput("gadgets", size=1440,
                                        runs=12 * SCALE)
    bench_record("jit_throughput_gadgets", **metrics)
    assert speedup >= 2.0, (
        f"jit engine only {speedup:.2f}x over fast on the gadget stream "
        f"(acceptance floor is 2.0x)"
    )


@pytest.mark.paper
def test_jit_bare_throughput_jsmn(bench_record):
    """Jit tier parses dense JSON documents ≥ 2× faster than fast."""
    speedup, metrics = _bare_throughput("jsmn", size=160 * SCALE, runs=12)
    bench_record("jit_throughput_jsmn", **metrics)
    assert speedup >= 2.0, (
        f"jit engine only {speedup:.2f}x over fast on jsmn documents "
        f"(acceptance floor is 2.0x)"
    )
