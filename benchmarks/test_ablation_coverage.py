"""Ablation — lazy speculative-coverage tracking (paper §6.3).

Teapot notes Shadow-Copy block visits in a buffer and flushes them into the
coverage map only when a rollback begins, instead of calling the expensive
register-clobbering coverage callback in every simulated block.  This
ablation builds the same workload with and without the optimisation and
compares instrumented run time; coverage results must be identical.
"""

import pytest

from benchmarks.conftest import PERF_INPUT_SIZE
from repro.core import TeapotConfig, TeapotRewriter
from repro.core.teapot import TeapotRuntime
from repro.targets import compile_vanilla, get_target


@pytest.mark.paper
def test_ablation_lazy_speculative_coverage(benchmark):
    target = get_target("libyaml")
    binary = compile_vanilla(target)
    perf_input = target.perf_input(PERF_INPUT_SIZE)

    def run_both():
        results = {}
        for lazy in (True, False):
            config = TeapotConfig(lazy_spec_coverage=lazy, nested_speculation=False)
            runtime = TeapotRuntime(TeapotRewriter(config).instrument(binary),
                                    config=config)
            execution = runtime.run(perf_input)
            results[lazy] = (execution, runtime.coverage.new_coverage_signature())
        return results

    results = benchmark.pedantic(run_both, iterations=1, rounds=1)
    lazy_exec, lazy_cov = results[True]
    eager_exec, eager_cov = results[False]
    print(f"\nAblation (speculative coverage): lazy={lazy_exec.cycles} cycles, "
          f"eager={eager_exec.cycles} cycles "
          f"(saving {100 * (1 - lazy_exec.cycles / eager_exec.cycles):.1f}%)")
    # The optimisation saves cycles without losing coverage signal: the lazy
    # build still collects speculative coverage (in its dedicated map), and
    # the program's observable behaviour is identical.  (In the eager build
    # the shadow blocks feed the expensive normal-coverage callback instead,
    # which is exactly the cost being measured.)
    assert lazy_exec.cycles < eager_exec.cycles
    assert lazy_cov[1] > 0
    assert sum(eager_cov) >= lazy_cov[0]
    assert lazy_exec.exit_status == eager_exec.exit_status
