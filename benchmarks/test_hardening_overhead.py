"""Hardening overhead: targeted mitigation vs fence-everything.

Not a paper figure, but the headline trade-off the paper's ranked report
output exists to enable: patching only the verified gadget sites must cost
strictly less run time than fencing every speculative window, while being
exactly as effective on the reported sites.  The benchmark runs the full
detect → patch → verify loop on the Kocher-sample driver and records the
per-strategy cycle accounts as a machine-readable ``BENCH_*.json``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCALE
from repro.analysis.experiments import run_hardening_matrix


@pytest.mark.paper
def test_hardening_overhead_matrix(bench_record):
    (row,) = run_hardening_matrix(
        targets=("gadgets",),
        iterations=400 * SCALE,
        seed=1234,
    )
    print("\nHardening matrix (gadgets):")
    for strategy, result in row.results.items():
        print(f"  {strategy:10s} eliminated {len(result.eliminated)}/"
              f"{len(result.sites_before)}  overhead {result.overhead:.3f}x")

    bench_record(
        "hardening_overhead",
        engine="fast",
        cycles={strategy: result.hardened_cycles
                for strategy, result in row.results.items()},
        native_cycles=next(iter(row.results.values())).native_cycles,
        overhead={strategy: round(result.overhead, 4)
                  for strategy, result in row.results.items()},
        sites={strategy: len(result.sites_before)
               for strategy, result in row.results.items()},
    )

    baseline = row.results["fence-all"]
    assert baseline.all_eliminated
    for strategy in ("fence", "mask"):
        result = row.results[strategy]
        # Targeted hardening is exactly as effective on the reported sites…
        assert result.all_eliminated, (strategy, result.residual)
        # …at strictly lower run-time cost than fencing everything.
        assert result.hardened_cycles < baseline.hardened_cycles, strategy
