"""Figure 1 — motivation: SpecTaint vs SpecFuzz run time on jsmn and libyaml.

Paper: SpecTaint is 28.5x (libyaml) and 11.1x (jsmn) slower than SpecFuzz;
both are hundreds to tens of thousands of times slower than native.  The
reproduction checks the *shape*: both tools carry a large overhead over
native, and SpecTaint is several times slower than SpecFuzz.
"""

import pytest

from benchmarks.conftest import PERF_INPUT_SIZE
from repro.analysis.experiments import run_figure1


@pytest.mark.paper
def test_figure1_spectaint_vs_specfuzz(benchmark):
    rows = benchmark.pedantic(
        run_figure1, kwargs={"input_size": PERF_INPUT_SIZE}, iterations=1, rounds=1
    )
    print("\nFigure 1 — normalized run time (native = 1x):")
    for row in rows:
        print(f"  {row.program:10s} "
              f"SpecTaint {row.normalized('spectaint'):10.1f}x   "
              f"SpecFuzz {row.normalized('specfuzz'):10.1f}x")
    for row in rows:
        spectaint = row.normalized("spectaint")
        specfuzz = row.normalized("specfuzz")
        # Both instrumented runs are orders of magnitude slower than native.
        assert specfuzz > 20, row.program
        assert spectaint > 100, row.program
        # SpecTaint is several times slower than SpecFuzz (paper: 11x-28x).
        assert spectaint > 3 * specfuzz, row.program
