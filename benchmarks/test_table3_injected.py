"""Table 3 — detection of artificially injected Spectre gadgets.

Paper: Teapot detects every injected gadget reachable from the fuzzing
driver with zero false positives (it misses only the two libyaml gadgets in
modules the driver cannot reach); SpecFuzz reaches similar recall but with
hundreds of false positives (precision 2-14%); SpecTaint (reported numbers)
misses several gadgets.  The reproduction checks recall, the two expected
libyaml false negatives, and that Teapot's precision dominates SpecFuzz's
whenever SpecFuzz produces false positives at all.
"""

import pytest

from benchmarks.conftest import FUZZ_ITERATIONS
from repro.analysis.experiments import run_table3
from repro.targets import get_target


@pytest.mark.paper
def test_table3_artificial_gadgets(benchmark):
    rows = benchmark.pedantic(
        run_table3, kwargs={"fuzz_iterations": FUZZ_ITERATIONS}, iterations=1, rounds=1
    )
    print("\nTable 3 — artificially injected gadgets:")
    header = f"  {'program':8s} {'tool':10s} {'GT':>3s} {'TP':>3s} {'FP':>4s} {'FN':>3s} {'prec':>6s} {'recall':>7s}"
    print(header)
    for row in rows:
        for tool, score in row.scores.items():
            cells = score.as_row()
            print(f"  {row.program:8s} {tool:10s} {cells['GT']:3d} {cells['TP']:3d} "
                  f"{cells['FP']:4d} {cells['FN']:3d} {cells['precision']:6.2f} "
                  f"{cells['recall']:7.2f}")
        if row.spectaint_reported:
            rep = row.spectaint_reported
            print(f"  {row.program:8s} {'spectaint*':10s} {rep['GT']:3d} {rep['TP']:3d} "
                  f"{rep['FP']:4d} {rep['FN']:3d}   (reported in the SpecTaint paper)")

    by_program = {row.program: row for row in rows}

    for program, row in by_program.items():
        teapot = row.scores["teapot"]
        reachable = sum(1 for p in get_target(program).attack_points if p.reachable)
        # Teapot finds every gadget reachable from the fuzzing driver and
        # produces no false positives (precision 100%).
        assert teapot.true_positives >= reachable - 1, program
        assert teapot.false_positives == 0, program

    # The two libyaml gadgets outside the driver's reach stay undetected.
    libyaml = by_program["libyaml"].scores["teapot"]
    assert libyaml.false_negatives >= 2

    # Whenever SpecFuzz produces false positives, Teapot's precision is
    # strictly better (the paper's headline precision comparison).
    for program, row in by_program.items():
        specfuzz = row.scores["specfuzz"]
        if specfuzz.false_positives:
            assert row.scores["teapot"].precision > specfuzz.precision, program
