"""Speculation-variant matrix — exec/s and reports per variant × engine.

Not a paper figure: the paper evaluates conditional-branch (Spectre-PHT)
misprediction only.  This benchmark measures the cost of the speculation
models that extend the reproduction past the paper — fuzzing throughput
and detected-site counts per variant, on both emulator engines, over the
planted gadget-sample targets.  Dynamic model sites force the fast engine
onto its generic fallback thunks, so this is also the regression gauge
for how much of the fast path a variant run retains.

Emits ``BENCH_variant_matrix.json`` via the ``bench_record`` fixture.
"""

import time

import pytest

from benchmarks.conftest import SCALE
from repro.core.config import TeapotConfig
from repro.core.teapot import TeapotRewriter, TeapotRuntime
from repro.fuzzing.fuzzer import Fuzzer, FuzzTarget
from repro.targets import get_target
from repro.targets.injection import compile_vanilla

VARIANTS = ("pht", "btb", "rsb", "stl")
ENGINES = ("fast", "legacy")
ITERATIONS = 40 * SCALE


def _target_for(variant: str) -> str:
    # PHT fuzzes the classic Kocher samples; each other variant fuzzes its
    # own planted gadget-sample target.
    return "gadgets" if variant == "pht" else f"gadgets-{variant}"


@pytest.mark.paper
def test_variant_matrix(bench_record):
    metrics = {}
    per_variant_sites = {}
    for variant in VARIANTS:
        target = get_target(_target_for(variant))
        config = TeapotConfig(variants=(variant,))
        binary = TeapotRewriter(config).instrument(compile_vanilla(target))
        engine_results = {}
        for engine in ENGINES:
            runtime = TeapotRuntime(binary,
                                    config=config.with_engine(engine))
            fuzzer = Fuzzer(FuzzTarget(runtime), seeds=list(target.seeds),
                            seed=97)
            started = time.perf_counter()
            result = fuzzer.run_campaign(ITERATIONS)
            elapsed = time.perf_counter() - started
            engine_results[engine] = result
            metrics[f"{variant}_{engine}_exec_per_sec"] = round(
                result.executions / elapsed, 1) if elapsed else 0.0
            metrics[f"{variant}_{engine}_cycles"] = result.total_cycles
        fast, legacy = engine_results["fast"], engine_results["legacy"]
        # Engine invariance holds for every variant (differential property).
        assert fast.reports.to_dicts() == legacy.reports.to_dicts()
        assert fast.total_cycles == legacy.total_cycles
        sites = fast.reports.count_by_variant().get(variant, 0)
        per_variant_sites[variant] = sites
        metrics[f"{variant}_unique_sites"] = sites

    bench_record(
        "variant_matrix",
        iterations=ITERATIONS,
        variants=",".join(VARIANTS),
        **metrics,
    )

    print("\nVariant matrix (unique sites):", per_variant_sites)
    for variant in ("btb", "rsb", "stl"):
        assert per_variant_sites[variant] >= 2, (
            f"{variant}: planted sites not detected")
    assert per_variant_sites["pht"] >= 4   # the four Kocher samples
