"""Telemetry cost: the disabled path is (nearly) free, the enabled path cheap.

Two guarantees are measured on the Kocher-sample fuzzing loop:

* **disabled**: with no telemetry installed, the only added work is one
  ``is not None`` check per execution.  Throughput must stay within 5 %
  of the recorded ``BENCH_emulator_throughput_gadgets`` baseline — the
  hard assertion runs when ``REPRO_BENCH_BASELINE_DIR`` points at
  baselines produced *on the same machine in the same session* (the CI
  ``telemetry-smoke`` job generates them minutes earlier); without the
  variable the comparison is recorded but advisory, since baselines from
  other hardware would make the 5 % bar meaningless.

* **enabled**: with a full registry attached (counters, gauges,
  histograms — no trace sink), results stay bit-identical and the
  recorded overhead ratio documents the live-progress cost.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import SCALE
from repro.core.config import TeapotConfig
from repro.core.teapot import TeapotRewriter, TeapotRuntime
from repro.fuzzing.fuzzer import Fuzzer, FuzzTarget
from repro.targets import get_target
from repro.targets.injection import compile_vanilla
from repro.telemetry import Telemetry
from repro.telemetry import context as telemetry_context

#: same-machine baseline directory; set by CI to enforce the 5 % bar.
BASELINE_DIR = os.environ.get("REPRO_BENCH_BASELINE_DIR")


def _timed_chunk(fuzzer, iterations: int):
    started = time.perf_counter()
    result = fuzzer.run_chunk(iterations)
    elapsed = time.perf_counter() - started
    digest = (
        result.total_cycles,
        result.total_steps,
        result.crashes,
        result.hangs,
        result.normal_coverage,
        result.speculative_coverage,
        result.reports.to_dicts(),
    )
    return iterations / elapsed, digest


def _build_fuzzer(binary, target, seed: int) -> Fuzzer:
    runtime = TeapotRuntime(binary, config=TeapotConfig())
    return Fuzzer(FuzzTarget(runtime), seeds=list(target.seeds), seed=seed)


def _baseline_rate(name: str):
    """The recorded fast-engine exec/s baseline, or None off-CI."""
    if not BASELINE_DIR:
        return None
    path = os.path.join(BASELINE_DIR, f"BENCH_{name}.json")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return float(json.load(handle)["fast_exec_per_sec"])
    except (OSError, KeyError, ValueError):
        return None


@pytest.mark.paper
def test_disabled_and_enabled_telemetry_cost(bench_record):
    target = get_target("gadgets")
    binary = TeapotRewriter(TeapotConfig()).instrument(compile_vanilla(target))
    iterations = 400 * SCALE
    seed = 7

    plain = _build_fuzzer(binary, target, seed)
    observed = _build_fuzzer(binary, target, seed)
    plain.run_chunk(max(5, iterations // 10))
    observed.run_chunk(max(5, iterations // 10))

    telemetry = Telemetry.create()
    ratios, plain_rates, observed_rates = [], [], []
    for _ in range(5):
        plain_rate, plain_digest = _timed_chunk(plain, iterations)
        with telemetry_context.session(telemetry):
            observed_rate, observed_digest = _timed_chunk(observed, iterations)
        assert observed_digest == plain_digest, (
            "telemetry changed execution results — it must be observation-only"
        )
        plain_rates.append(plain_rate)
        observed_rates.append(observed_rate)
        ratios.append(observed_rate / plain_rate)
    assert telemetry.registry.value("fuzz.executions") == 5 * iterations

    ratios.sort()
    enabled_ratio = ratios[-2]  # second-highest: robust to one load spike
    disabled_rate = max(plain_rates)
    print(f"\ntelemetry: disabled {disabled_rate:8.1f} exec/s | "
          f"enabled {max(observed_rates):8.1f} exec/s | "
          f"enabled/disabled {enabled_ratio:.3f}")

    metrics = {
        "disabled_exec_per_sec": round(disabled_rate, 1),
        "enabled_exec_per_sec": round(max(observed_rates), 1),
        "enabled_over_disabled": round(enabled_ratio, 3),
        "telemetry": {
            "version": telemetry.snapshot()["version"],
            "fuzz.executions": telemetry.registry.value("fuzz.executions"),
            "engine.executions": telemetry.registry.value("engine.executions"),
        },
    }

    baseline = _baseline_rate("emulator_throughput_gadgets")
    if baseline is not None:
        metrics["baseline_exec_per_sec"] = round(baseline, 1)
        metrics["disabled_over_baseline"] = round(disabled_rate / baseline, 3)
        assert disabled_rate >= 0.95 * baseline, (
            f"disabled-telemetry throughput {disabled_rate:.1f} exec/s fell "
            f"more than 5% below the same-machine baseline {baseline:.1f} "
            f"exec/s — the disabled fast path regressed"
        )
    bench_record("telemetry_overhead", **metrics)

    # The enabled path powers live progress; it must not halve throughput.
    assert enabled_ratio >= 0.5, (
        f"enabled telemetry costs {(1 - enabled_ratio) * 100:.0f}% of "
        f"throughput (bar: 50%)"
    )
