"""Ablation — what Speculation Shadows buys (guard elimination).

Compares the cycle cost of executing the same workload under Teapot's
two-copy instrumentation (no guards anywhere) against the single-copy,
guard-per-site instrumentation style used by SpecFuzz.  This isolates the
design principle of paper §5: the detection policies differ between the two
tools, but the *structural* overhead difference (guard traffic on the hot
normal-execution path plus always-resident instrumentation) is what the
shadows remove.
"""

import pytest

from benchmarks.conftest import PERF_INPUT_SIZE
from repro.baselines.specfuzz import SpecFuzzConfig, SpecFuzzRewriter, SpecFuzzRuntime
from repro.core import TeapotConfig, TeapotRewriter
from repro.core.teapot import TeapotRuntime
from repro.disasm import disassemble
from repro.isa.instructions import Opcode
from repro.targets import compile_vanilla, get_target


@pytest.mark.paper
def test_ablation_guard_elimination(benchmark):
    target = get_target("libhtp")
    binary = compile_vanilla(target)
    perf_input = target.perf_input(PERF_INPUT_SIZE)

    def run_both():
        teapot_config = TeapotConfig().without_nesting()
        teapot = TeapotRuntime(TeapotRewriter(teapot_config).instrument(binary),
                               config=teapot_config)
        sf_config = SpecFuzzConfig().without_nesting()
        specfuzz = SpecFuzzRuntime(SpecFuzzRewriter(sf_config).instrument(binary),
                                   config=sf_config)
        return teapot.run(perf_input), specfuzz.run(perf_input), teapot, specfuzz

    teapot_result, specfuzz_result, teapot, specfuzz = benchmark.pedantic(
        run_both, iterations=1, rounds=1
    )

    # Structural claim 1: Teapot's binaries contain no guard checks at all,
    # the single-copy baseline contains many.
    teapot_guards = sum(
        1 for f in disassemble(teapot.binary).functions
        for i in f.instructions() if i.opcode is Opcode.GUARD_CHECK
    )
    specfuzz_guards = sum(
        1 for f in disassemble(specfuzz.binary).functions
        for i in f.instructions() if i.opcode is Opcode.GUARD_CHECK
    )
    print(f"\nAblation (guard elimination): teapot guards={teapot_guards}, "
          f"single-copy guards={specfuzz_guards}")
    print(f"  cycles: teapot={teapot_result.cycles}  single-copy={specfuzz_result.cycles}")
    assert teapot_guards == 0
    assert specfuzz_guards > 100

    # Structural claim 2: despite carrying the heavier Kasper policy (ASan +
    # DIFT vs ASan only), Teapot stays within the same ballpark as the
    # guard-based design (paper: 0.5x-2.0x of SpecFuzz).
    assert teapot_result.cycles <= 3 * specfuzz_result.cycles
