"""Ablation — nested-speculation heuristics (Teapot vs SpecTaint's 5-visit cap).

The paper attributes part of SpecTaint's false negatives to its heuristic of
entering speculation for each branch at most five times (§6.1, §7.3).  This
ablation runs Teapot's runtime over a gadget guarded by *two* nested
mispredictions using both nesting policies and shows that the eager Teapot
heuristic reaches deeper simulation than the capped one under the same
fuzzing budget.
"""

import pytest

from repro.core import TeapotConfig, TeapotRewriter
from repro.core.teapot import TeapotRuntime
from repro.fuzzing import Fuzzer, FuzzTarget
from repro.minic.compiler import compile_source
from repro.runtime.speculation import SpecTaintNestingPolicy, SpeculationController

NESTED_GADGET_SOURCE = r"""
int limit = 8;
int enable = 1;

int main() {
    byte buf[16];
    int n = read_input(buf, 16);
    byte *arr1 = malloc(8);
    byte *probe = malloc(512);
    int index = buf[0] + buf[1] * 256;
    int value = 0;
    if (enable > buf[2]) {
        if (index < limit) {
            value = probe[arr1[index]];
        }
    }
    free(arr1);
    free(probe);
    return value;
}
"""


def _campaign(nesting_policy_factory, iterations=40):
    binary = compile_source(NESTED_GADGET_SOURCE)
    config = TeapotConfig()
    runtime = TeapotRuntime(TeapotRewriter(config).instrument(binary), config=config)
    if nesting_policy_factory is not None:
        runtime.controller.policy = nesting_policy_factory()
    fuzzer = Fuzzer(FuzzTarget(runtime), seeds=[bytes([16, 0, 200, 1])], seed=5)
    result = fuzzer.run_campaign(iterations)
    return result, runtime.controller.stats


@pytest.mark.paper
def test_ablation_nesting_heuristics(benchmark):
    def run_both():
        teapot = _campaign(None)
        capped = _campaign(lambda: SpecTaintNestingPolicy(max_visits=5))
        return teapot, capped

    (teapot_result, teapot_stats), (capped_result, capped_stats) = benchmark.pedantic(
        run_both, iterations=1, rounds=1
    )
    print("\nAblation (nesting heuristics):")
    print(f"  teapot-policy : nested={teapot_stats.nested_simulations} "
          f"gadgets={teapot_result.gadget_count()}")
    print(f"  5-visit cap   : nested={capped_stats.nested_simulations} "
          f"gadgets={capped_result.gadget_count()}")
    # The eager heuristic explores (far) more nested speculation under the
    # same fuzzing budget, which is what buys the extra detections in §7.3.
    assert teapot_stats.nested_simulations > capped_stats.nested_simulations
    assert teapot_result.gadget_count() >= capped_result.gadget_count()
    assert teapot_result.gadget_count() >= 1
