"""Fuzzing-service overhead — durable queue vs the in-process pool.

Not a paper figure: this pins the cost of running a campaign through the
``service`` scheduler (durable on-disk job queue + worker fleet +
streaming ingestion) against the plain ``pool`` scheduler on the same
spec.  The service path adds a filesystem round-trip per job (submit →
lease → done record) plus event-driven result harvesting; the bar this
benchmark holds is that the detour stays within 25% of the pool's
wall-clock, while producing bit-identical summaries.

Measurement protocol: pool and service runs are interleaved in tight
back-to-back pairs and the gate takes the *minimum* service/pool ratio
across pairs.  Ambient noise (CPU scheduling, disk cache, a busy CI
host) inflates individual ratios but hits both sides of a pair roughly
equally; a genuine overhead regression shows up in every pair, so the
minimum is the noise-robust estimator of intrinsic overhead.  The
median ratio is recorded alongside for trajectory tracking.
"""

import time

import pytest

from benchmarks.conftest import SCALE
from repro.campaign import CampaignSpec, run_campaign

#: tolerated service-over-pool wall-clock ratio (the acceptance bar).
MAX_OVERHEAD_RATIO = 1.25

#: back-to-back (pool, service) measurement pairs.
PAIRS = 3


def _timed_run(spec, scheduler):
    started = time.perf_counter()
    summary = run_campaign(spec, scheduler=scheduler)
    return summary, time.perf_counter() - started


@pytest.mark.paper
def test_service_throughput(benchmark, bench_record):
    # workers=1 on both sides: the pool measures one process, the
    # service one worker thread, so the ratio isolates the queue/ingest
    # detour instead of process-vs-thread parallelism artifacts.
    spec = CampaignSpec(
        targets=("gadgets",),
        tools=("teapot", "specfuzz"),
        iterations=300 * SCALE,
        rounds=2,
        shards=2,
        seed=2025,
        workers=1,
    )
    jobs_total = sum(len(spec.jobs_for_round(index))
                     for index in range(spec.rounds))

    measurements = {"pairs": []}

    def timed_pairs(campaign_spec):
        pool_summary = service_summary = None
        for _ in range(PAIRS):
            pool_summary, pool_s = _timed_run(campaign_spec, "pool")
            service_summary, service_s = _timed_run(campaign_spec, "service")
            measurements["pairs"].append((pool_s, service_s))
        return pool_summary, service_summary

    pool_summary, service_summary = benchmark.pedantic(
        timed_pairs, args=(spec,), iterations=1, rounds=1)

    pairs = measurements["pairs"]
    ratios = sorted(service_s / pool_s for pool_s, service_s in pairs)
    best_ratio = ratios[0]
    median_ratio = ratios[len(ratios) // 2]
    pool_best = min(pool_s for pool_s, _ in pairs)
    service_best = min(service_s for _, service_s in pairs)

    executions = service_summary.total_executions()
    reports = sum(group.raw_reports for group in service_summary.groups)
    print(f"\nService throughput: {jobs_total} jobs, "
          f"pool best {pool_best:.3f}s vs service best {service_best:.3f}s, "
          f"paired ratios best {best_ratio:.2f} / median {median_ratio:.2f}")

    bench_record(
        "service_throughput",
        engine=spec.engine,
        jobs=jobs_total,
        executions=executions,
        jobs_per_sec=round(jobs_total / service_best, 2),
        reports_per_sec=round(reports / service_best, 1),
        exec_per_sec=round(executions / service_best, 1),
        pool_elapsed_s=round(pool_best, 4),
        service_elapsed_s=round(service_best, 4),
        overhead_ratio=round(best_ratio, 3),
        overhead_ratio_median=round(median_ratio, 3),
    )

    # The service detour must not change a single count…
    assert service_summary.to_dict() == pool_summary.to_dict()
    assert service_summary.rounds_completed == spec.rounds
    # …and must stay within the overhead budget.
    assert best_ratio <= MAX_OVERHEAD_RATIO, (
        f"service scheduler overhead {best_ratio:.2f}x in the best "
        f"matched pair (median {median_ratio:.2f}x) exceeds the "
        f"{MAX_OVERHEAD_RATIO}x budget")
