"""Figure 2 — switch lowering and compiler-dependent gadget existence.

Paper: the same ``switch`` compiles to a compare/branch chain under GCC
(Spectre-V1 vulnerable) and to a bounds-checked jump table under Clang
(safe).  The reproduction compiles the same mini-C switch both ways and
checks that only the branch-chain lowering exposes mispredictable
conditional branches.
"""

import pytest

from repro.analysis.experiments import run_figure2


@pytest.mark.paper
def test_figure2_switch_lowering(benchmark):
    results = benchmark.pedantic(run_figure2, iterations=1, rounds=1)
    by_lowering = {r.lowering: r for r in results}
    chain = by_lowering["branch_chain"]
    table = by_lowering["jump_table"]
    print("\nFigure 2 — switch lowering:")
    for r in results:
        print(f"  {r.lowering:14s} conditional branches in dispatch: "
              f"{r.conditional_branches}  speculation entries: {r.speculation_entries}  "
              f"Spectre-V1 exposed: {r.spectre_v1_exposed}")
    assert chain.spectre_v1_exposed
    assert not table.spectre_v1_exposed
    assert chain.conditional_branches >= 4   # one per case
    assert table.conditional_branches == 1   # only the bounds check
    assert chain.speculation_entries > table.speculation_entries
