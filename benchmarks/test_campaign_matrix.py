"""Campaign orchestration — whole-suite matrix throughput.

Not a paper figure: this benchmark exercises the campaign scheduler the
way the paper's evaluation machinery ran its honggfuzz campaigns — a
matrix of (target × tool) jobs with sharded corpora, cross-worker corpus
sync between rounds, and cross-worker report dedup.  It pins the
qualitative properties a matrix run must keep (determinism, per-group
accounting) while measuring the orchestration overhead on a fast target.
"""

import time

import pytest

from benchmarks.conftest import SCALE
from repro.campaign import CampaignSpec, run_campaign


@pytest.mark.paper
def test_campaign_matrix_throughput(benchmark, bench_record):
    spec = CampaignSpec(
        targets=("gadgets",),
        tools=("teapot", "specfuzz"),
        iterations=30 * SCALE,
        rounds=2,
        shards=2,
        seed=2025,
        workers=1,
    )
    timing = {}

    def timed_run(campaign_spec):
        started = time.perf_counter()
        result = run_campaign(campaign_spec)
        timing["elapsed"] = time.perf_counter() - started
        return result

    summary = benchmark.pedantic(timed_run, args=(spec,),
                                 iterations=1, rounds=1)

    print("\nCampaign matrix summary:")
    print(summary.format_table())

    elapsed = timing.get("elapsed", 0.0)
    executions = summary.total_executions()
    bench_record(
        "campaign_matrix",
        engine=spec.engine,
        executions=executions,
        exec_per_sec=round(executions / elapsed, 1) if elapsed else 0.0,
        cycles=sum(group.total_cycles for group in summary.groups),
        unique_gadgets=summary.total_unique_gadgets(),
    )

    assert summary.rounds_completed == 2
    assert summary.total_executions() == 2 * 30 * SCALE
    teapot = summary.row("gadgets", "teapot")
    specfuzz = summary.row("gadgets", "specfuzz")
    assert teapot.unique_gadgets >= 1
    assert specfuzz.unique_gadgets >= 1
    # Dedup across workers: raw occurrences always >= unique sites.
    assert teapot.raw_reports >= teapot.unique_gadgets
    # Determinism: replaying the spec reproduces the summary exactly.
    assert run_campaign(spec).to_dict() == summary.to_dict()
