"""Service-observatory overhead — instrumented vs disabled service runs.

Not a paper figure: this pins the cost of the service observatory (queue
metrics, distributed job tracing, lifecycle merging in the ingestor)
against the identical campaign with observability off
(``REPRO_SERVICE_OBSERVE=0``).  Observability is observation-only, so
the two summaries must be bit-identical and the instrumented run's
wall-clock must stay within 5% of the disabled run's.

Measurement protocol mirrors ``test_service_throughput``: disabled and
instrumented runs interleave in tight back-to-back pairs and the gate
takes the *minimum* instrumented/disabled ratio across pairs — ambient
noise hits both sides of a pair roughly equally, so the minimum is the
noise-robust estimator of intrinsic overhead.
"""

import os
import time

import pytest

from benchmarks.conftest import SCALE
from repro.campaign import CampaignSpec, run_campaign
from repro.service.scheduler import SERVICE_OBSERVE_ENV

#: tolerated instrumented-over-disabled wall-clock ratio (the ISSUE bar).
MAX_OVERHEAD_RATIO = 1.05

#: back-to-back (disabled, instrumented) measurement pairs.
PAIRS = 3


def _timed_run(spec, observe):
    os.environ[SERVICE_OBSERVE_ENV] = "1" if observe else "0"
    try:
        started = time.perf_counter()
        summary = run_campaign(spec, scheduler="service")
        return summary, time.perf_counter() - started
    finally:
        os.environ.pop(SERVICE_OBSERVE_ENV, None)


@pytest.mark.paper
def test_service_observability_overhead(benchmark, bench_record):
    spec = CampaignSpec(
        targets=("gadgets",),
        tools=("teapot", "specfuzz"),
        iterations=300 * SCALE,
        rounds=2,
        shards=2,
        seed=2025,
        workers=1,
    )
    jobs_total = sum(len(spec.jobs_for_round(index))
                     for index in range(spec.rounds))

    measurements = {"pairs": []}

    def timed_pairs(campaign_spec):
        off_summary = on_summary = None
        for _ in range(PAIRS):
            off_summary, off_s = _timed_run(campaign_spec, observe=False)
            on_summary, on_s = _timed_run(campaign_spec, observe=True)
            measurements["pairs"].append((off_s, on_s))
        return off_summary, on_summary

    off_summary, on_summary = benchmark.pedantic(
        timed_pairs, args=(spec,), iterations=1, rounds=1)

    pairs = measurements["pairs"]
    ratios = sorted(on_s / off_s for off_s, on_s in pairs)
    best_ratio = ratios[0]
    median_ratio = ratios[len(ratios) // 2]
    off_best = min(off_s for off_s, _ in pairs)
    on_best = min(on_s for _, on_s in pairs)

    executions = on_summary.total_executions()
    print(f"\nService observability: {jobs_total} jobs, "
          f"disabled best {off_best:.3f}s vs instrumented best "
          f"{on_best:.3f}s, paired ratios best {best_ratio:.2f} / "
          f"median {median_ratio:.2f}")

    bench_record(
        "service_observability",
        engine=spec.engine,
        jobs=jobs_total,
        executions=executions,
        disabled_elapsed_s=round(off_best, 4),
        instrumented_elapsed_s=round(on_best, 4),
        jobs_per_sec=round(jobs_total / on_best, 2),
        exec_per_sec=round(executions / on_best, 1),
        overhead_ratio=round(best_ratio, 3),
        overhead_ratio_median=round(median_ratio, 3),
    )

    # Observation-only: not a single count may move…
    assert on_summary.to_dict() == off_summary.to_dict()
    assert on_summary.rounds_completed == spec.rounds
    # …and the instrumentation must stay within the 5% budget.
    assert best_ratio <= MAX_OVERHEAD_RATIO, (
        f"service observability overhead {best_ratio:.2f}x in the best "
        f"matched pair (median {median_ratio:.2f}x) exceeds the "
        f"{MAX_OVERHEAD_RATIO}x budget")
