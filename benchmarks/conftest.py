"""Shared configuration for the paper-experiment benchmarks.

Every benchmark is deterministic; the ``REPRO_BENCH_SCALE`` environment
variable scales fuzzing iterations and crafted-input sizes (1 = quick mode,
the default; larger values approach the paper's 24-hour campaigns the same
way the artifact's Appendix B.7.3 "three-hour approximation" does).
"""

from __future__ import annotations

import os

import pytest

#: scale factor applied to fuzz iterations and perf-input sizes.
SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))

#: crafted-input size for the run-time experiments (Figures 1 and 7).
PERF_INPUT_SIZE = 160 * SCALE

#: fuzzing iterations per campaign for the detection experiments.
FUZZ_ITERATIONS = 30 * SCALE


def pytest_configure(config):
    config.addinivalue_line("markers", "paper: regenerates a paper figure/table")


@pytest.fixture(scope="session")
def bench_scale():
    """The active scale factor (exposed for reporting)."""
    return SCALE
