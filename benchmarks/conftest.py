"""Shared configuration for the paper-experiment benchmarks.

Every benchmark is deterministic; the ``REPRO_BENCH_SCALE`` environment
variable scales fuzzing iterations and crafted-input sizes (1 = quick mode,
the default; larger values approach the paper's 24-hour campaigns the same
way the artifact's Appendix B.7.3 "three-hour approximation" does).
"""

from __future__ import annotations

import json
import os
from typing import Dict

import pytest

#: scale factor applied to fuzz iterations and perf-input sizes.
SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))

#: metrics recorded by benchmarks through the ``bench_record`` fixture,
#: keyed by benchmark name; flushed to ``BENCH_<name>.json`` files at
#: session end so the perf trajectory is machine-readable (CI uploads the
#: files as artifacts).
_BENCH_RESULTS: Dict[str, Dict[str, object]] = {}

#: where the ``BENCH_<name>.json`` files land (default: working directory).
BENCH_DIR = os.environ.get("REPRO_BENCH_DIR", ".")

#: crafted-input size for the run-time experiments (Figures 1 and 7).
PERF_INPUT_SIZE = 160 * SCALE

#: fuzzing iterations per campaign for the detection experiments.
FUZZ_ITERATIONS = 30 * SCALE


def pytest_configure(config):
    config.addinivalue_line("markers", "paper: regenerates a paper figure/table")


def _provenance() -> Dict[str, object]:
    """Stable artifact provenance: when/where/what produced the numbers.

    ``repro bench diff`` and ``repro bench history`` key their trajectory
    views on these fields; all are additive to the pre-existing payload
    (old artifacts without them still diff fine).
    """
    import platform
    import subprocess
    import time

    commit = ""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return {
        "schema": "repro.bench/record",
        "schema_version": 1,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": commit,
        "host": platform.node(),
        "platform": platform.platform(),
    }


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<name>.json`` per recorded benchmark."""
    if not _BENCH_RESULTS:
        return
    from repro._version import __version__

    provenance = _provenance()
    os.makedirs(BENCH_DIR, exist_ok=True)
    for name, metrics in sorted(_BENCH_RESULTS.items()):
        payload = {"bench": name, "scale": SCALE, "version": __version__,
                   **provenance, **metrics}
        path = os.path.join(BENCH_DIR, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=1, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def bench_scale():
    """The active scale factor (exposed for reporting)."""
    return SCALE


@pytest.fixture
def bench_record():
    """Record machine-readable metrics for the current benchmark.

    Usage: ``bench_record("emulator_throughput", engine="fast",
    exec_per_sec=1234.5, cycles=...)``.  All metrics recorded under one
    name are merged into a single ``BENCH_<name>.json`` at session end.
    """
    def record(name: str, **metrics: object) -> None:
        _BENCH_RESULTS.setdefault(name, {}).update(metrics)
    return record
