"""Table 4 — gadgets found in unmodified real-world binaries.

Paper: on the vanilla binaries Teapot reports gadgets broken down by
attacker class and side channel (User/Massage x MDS/Cache/Port), including
exploitation routes no other detector models (User-Port and Massage-*),
while SpecFuzz reports large totals dominated by false positives.  Absolute
counts are workload-dependent; the reproduction checks the qualitative
findings.
"""

import pytest

from benchmarks.conftest import FUZZ_ITERATIONS
from repro.analysis.experiments import run_table4


@pytest.mark.paper
def test_table4_vanilla_binaries(benchmark):
    rows = benchmark.pedantic(
        run_table4, kwargs={"fuzz_iterations": FUZZ_ITERATIONS}, iterations=1, rounds=1
    )
    print("\nTable 4 — gadgets found in vanilla binaries (unique sites):")
    for row in rows:
        print(f"  {row.program:8s} spectaint={row.spectaint_total:4d} "
              f"specfuzz={row.specfuzz_total:4d} teapot={row.teapot_total:4d} "
              f"{row.teapot_by_category}")

    by_program = {row.program: row for row in rows}
    # The larger parsing/decompression workloads contain naturally occurring
    # gadget patterns that Teapot classifies.
    assert any(row.teapot_total > 0 for row in rows)
    assert by_program["brotli"].teapot_total >= by_program["jsmn"].teapot_total
    # Teapot's policy classifies gadgets into the paper's categories and
    # detects exploitation routes beyond plain User-Cache when present.
    categories = set()
    for row in rows:
        categories.update(row.teapot_by_category)
    assert any(cat.startswith("User-") for cat in categories)
    # jsmn is the quietest target in the paper (0 gadgets reported).
    assert by_program["jsmn"].teapot_total <= min(
        row.teapot_total for row in rows
    ) + 1
