"""Figure 7 — run-time performance of Teapot vs SpecTaint vs SpecFuzz.

Paper: with nested speculation and heuristics disabled for all tools,
Teapot outperforms SpecTaint by 22.4x (jsmn) and 27.6x (libyaml), and sits
within 0.5x-2.0x of SpecFuzz on every program despite implementing a
richer detection policy.  The reproduction checks those relationships.
"""

import pytest

from benchmarks.conftest import PERF_INPUT_SIZE
from repro.analysis.experiments import run_figure7


@pytest.mark.paper
def test_figure7_normalized_runtime(benchmark, bench_record):
    rows = benchmark.pedantic(
        run_figure7, kwargs={"input_size": PERF_INPUT_SIZE}, iterations=1, rounds=1
    )
    bench_record(
        "fig7_runtime",
        engine="fast",
        cycles={row.program: {"native": row.native_cycles, **row.tool_cycles}
                for row in rows},
        normalized={row.program: row.as_dict() for row in rows},
    )
    print("\nFigure 7 — normalized run time (native = 1x):")
    for row in rows:
        print(f"  {row.program:10s} "
              f"SpecTaint {row.normalized('spectaint'):9.1f}x   "
              f"SpecFuzz {row.normalized('specfuzz'):8.1f}x   "
              f"Teapot {row.normalized('teapot'):8.1f}x")
    for row in rows:
        teapot = row.normalized("teapot")
        specfuzz = row.normalized("specfuzz")
        spectaint = row.normalized("spectaint")
        # Teapot is far faster than the only other binary-level tool
        # (paper: >20x; the emulation-multiplier calibration gives >5x).
        assert spectaint / teapot > 5, row.program
        # Teapot is comparable to the compiler-based SpecFuzz
        # (paper: 0.5x-2.0x of SpecFuzz).
        assert 0.3 <= teapot / specfuzz <= 3.0, row.program
        # Everything is still much slower than native (speculation simulation).
        assert teapot > 20, row.program
